"""Extended property-based tests: d-ary coords, composites, layout, io, theory."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dary import coords as dc
from repro.memory import MemoryLayout
from repro.core import ModuloMapping, RandomMapping
from repro.trees import CompleteBinaryTree

arities = st.integers(min_value=2, max_value=6)
small_ranks = st.integers(min_value=0, max_value=400)


class TestDaryCoordProperties:
    @given(arities, small_ranks)
    def test_round_trip(self, d, node):
        i, j = dc.id_to_coord(node, d)
        assert dc.coord_to_id(i, j, d) == node
        assert 0 <= i < d**j

    @given(arities, small_ranks, st.integers(min_value=0, max_value=5))
    def test_child_parent_inverse(self, d, node, which):
        which = which % d
        assert dc.parent(dc.child(node, which, d), d) == node

    @given(arities, small_ranks)
    def test_level_consistency(self, d, node):
        j = dc.level_of(node, d)
        assert dc.level_start(j, d) <= node < dc.level_start(j + 1, d)
        assert dc.ancestor(node, j, d) == 0

    @given(arities, small_ranks)
    def test_siblings_share_parent(self, d, node):
        if node == 0:
            return
        for sib in dc.siblings(node, d):
            assert dc.parent(sib, d) == dc.parent(node, d)
            assert sib != node
        assert len(dc.siblings(node, d)) == d - 1

    @given(arities, small_ranks, small_ranks)
    def test_bfs_rank_is_bfs_order(self, d, root, rank):
        rank = rank % 40
        node = dc.bfs_node_of_subtree(root, rank, d)
        nxt = dc.bfs_node_of_subtree(root, rank + 1, d)
        assert nxt > node  # BFS ranks ascend in heap-id order within a subtree

    @given(arities, st.integers(min_value=0, max_value=7))
    def test_subtree_size_recurrence(self, d, levels):
        # size(k+1) = d * size(k) + 1
        assert dc.subtree_size(levels + 1, d) == d * dc.subtree_size(levels, d) + 1


class TestLayoutProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=40), st.integers(min_value=0, max_value=10**6))
    def test_address_round_trip(self, M, seed):
        tree = CompleteBinaryTree(7)
        layout = MemoryLayout(RandomMapping(tree, M, seed=seed % 100))
        node = seed % tree.num_nodes
        module, offset = layout.address_of(node)
        assert layout.node_at(module, offset) == node

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=40))
    def test_sizes_partition(self, M):
        tree = CompleteBinaryTree(7)
        layout = MemoryLayout(ModuloMapping(tree, M))
        assert layout.module_sizes.sum() == tree.num_nodes
        assert layout.required_module_capacity == layout.module_sizes.max()


class TestIoProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=2, max_value=30), st.integers(min_value=0, max_value=50))
    def test_save_load_identity(self, M, seed):
        import tempfile
        from pathlib import Path

        from repro.io import load_mapping, save_mapping

        tree = CompleteBinaryTree(6)
        mapping = RandomMapping(tree, M, seed=seed)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / f"m_{M}_{seed}.npz"
            restored = load_mapping(save_mapping(mapping, path))
        assert np.array_equal(restored.color_array(), mapping.color_array())


class TestColorCfProperty:
    @settings(max_examples=12, deadline=None)
    @given(
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=6),
    )
    def test_color_cf_for_random_parameters(self, k, n_extra, h_extra):
        """Theorem 3 as a hypothesis property: CF on S(K), P(N) for random
        (k, N, H) combinations."""
        from repro.analysis import family_cost
        from repro.core import ColorMapping
        from repro.templates import PTemplate, STemplate

        N = k + n_extra
        H = N + h_extra
        tree = CompleteBinaryTree(H)
        mapping = ColorMapping(tree, N=N, k=k)
        assert family_cost(mapping, STemplate((1 << k) - 1)) == 0
        assert family_cost(mapping, PTemplate(N)) == 0


class TestTheoryProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=60), st.integers(min_value=1, max_value=20))
    def test_cdf_is_monotone_distribution(self, D, M):
        from repro.analysis.theory import max_load_cdf

        values = [max_load_cdf(D, M, t) for t in range(D + 1)]
        assert values[-1] == pytest.approx(1.0)
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))
        assert all(0.0 <= v <= 1.0 for v in values)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=60), st.integers(min_value=1, max_value=20))
    def test_expectation_within_support(self, D, M):
        from repro.analysis.theory import expected_max_load

        e = expected_max_load(D, M)
        assert max(D / M, 1.0) - 1e-9 <= e <= D + 1e-9
