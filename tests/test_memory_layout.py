"""Unit tests for the physical memory layout."""

import numpy as np
import pytest

from repro.core import ColorMapping, LabelTreeMapping, ModuloMapping
from repro.memory import MemoryLayout
from repro.trees import CompleteBinaryTree


class TestAddressing:
    def test_round_trip_every_node(self, tree8):
        layout = MemoryLayout(ModuloMapping(tree8, 7))
        for node in range(tree8.num_nodes):
            module, offset = layout.address_of(node)
            assert layout.node_at(module, offset) == node

    def test_module_matches_mapping(self, tree8):
        mapping = ColorMapping(tree8, N=5, k=2)
        layout = MemoryLayout(mapping)
        for node in range(0, tree8.num_nodes, 11):
            module, _ = layout.address_of(node)
            assert module == mapping.module_of(node)

    def test_offsets_are_dense_per_module(self, tree8):
        mapping = LabelTreeMapping(tree8, 15)
        layout = MemoryLayout(mapping)
        for g in range(15):
            contents = layout.module_contents(g)
            offsets = [layout.address_of(int(v))[1] for v in contents]
            assert offsets == list(range(contents.size))

    def test_offsets_bfs_ordered_within_module(self, tree8):
        layout = MemoryLayout(ModuloMapping(tree8, 5))
        contents = layout.module_contents(2)
        assert np.all(np.diff(contents) > 0)  # heap ids ascend with offset

    def test_invalid_addresses(self, tree8):
        layout = MemoryLayout(ModuloMapping(tree8, 5))
        with pytest.raises(ValueError):
            layout.node_at(5, 0)
        with pytest.raises(ValueError):
            layout.node_at(0, 10**6)
        with pytest.raises(ValueError):
            layout.address_of(tree8.num_nodes)


class TestOccupancy:
    def test_sizes_sum_to_tree(self, tree8):
        layout = MemoryLayout(ModuloMapping(tree8, 7))
        assert layout.module_sizes.sum() == tree8.num_nodes

    def test_capacity_and_waste(self, tree8):
        # 255 nodes on 5 modules: exact split, zero waste
        layout = MemoryLayout(ModuloMapping(tree8, 5))
        assert layout.required_module_capacity == 51
        assert layout.wasted_fraction == 0.0

    def test_color_wastes_more_than_labeltree(self):
        """The concrete cost of COLOR's load imbalance (Theorem 7's point)."""
        tree = CompleteBinaryTree(14)
        waste_color = MemoryLayout(ColorMapping.max_parallelism(tree, 4)).wasted_fraction
        waste_lt = MemoryLayout(LabelTreeMapping(tree, 15)).wasted_fraction
        assert waste_lt < 0.05
        assert waste_color > 0.3

    def test_offsets_view_readonly(self, tree8):
        layout = MemoryLayout(ModuloMapping(tree8, 5))
        with pytest.raises(ValueError):
            layout.offsets()[0] = 3
        with pytest.raises(ValueError):
            layout.module_contents(0)[0] = 3
