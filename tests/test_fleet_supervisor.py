"""FleetSupervisor: per-shard durability, restart/rejoin, the restore
ladder, and deterministic whole-fleet crash recovery."""

import json

import pytest

from repro.core import ColorMapping
from repro.fleet import (
    AffinityRouter,
    FleetCoordinator,
    FleetSupervisor,
    RoundRobinRouter,
    diff_fleet_reports,
    heavy_tailed_tenants,
)
from repro.memory import ParallelMemorySystem
from repro.memory.faults import FaultSchedule, per_shard_schedules
from repro.obs import EventRecorder
from repro.serve import ServeEngine
from repro.serve.durability import DurabilityError, SimulatedCrash
from repro.trees import CompleteBinaryTree

WORKLOAD = "subtree:7=1,path:5=1,level:4=1"
FAULT_SPEC = "drop=0.05@0:300,seed=3"


def build_engine(schedule=None, levels=8, modules=7):
    tree = CompleteBinaryTree(levels)
    mapping = ColorMapping.for_modules(tree, modules)
    system = ParallelMemorySystem(mapping)
    if schedule is not None:
        system.attach_faults(schedule)
    return ServeEngine(system, policy="greedy-pack")


def make_fleet(shards, kills=(), faults=False, recorder=None, router="least-loaded"):
    """A coordinator plus a matching ``factory(shard)`` for restarts."""

    def shard_schedule(shard):
        if not faults:
            return None
        base = FaultSchedule.parse(FAULT_SPEC)
        return per_shard_schedules(base, shards)[shard]

    engines = [build_engine(shard_schedule(i)) for i in range(shards)]
    coordinator = FleetCoordinator(
        engines, router=router, recorder=recorder, kills=list(kills)
    )

    def factory(shard):
        return build_engine(shard_schedule(shard))

    return coordinator, factory


def population(num_tenants=8, rate=4.0, seed=7):
    tree = CompleteBinaryTree(8)
    return heavy_tailed_tenants(tree, num_tenants, WORKLOAD, rate, seed=seed)


def identity_holds(report):
    return (
        report.completed + report.quota_shed + report.shard_shed
        + report.fleet_shed
        == report.arrivals
    )


# -- parameter validation ------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"checkpoint_every": 0},
        {"restart_after": 0},
        {"restart_budget": -1},
        {"backoff": 0},
        {"backoff_cap": 0},
        {"retain": 0},
    ],
)
def test_supervisor_rejects_bad_parameters(kwargs):
    coordinator, _ = make_fleet(2)
    with pytest.raises(ValueError):
        FleetSupervisor(coordinator, **kwargs)


def test_recover_without_state_dir_or_manifest(tmp_path):
    coordinator, _ = make_fleet(2)
    with pytest.raises(DurabilityError, match="no state dir"):
        FleetSupervisor(coordinator).recover(population().clients)
    supervisor = FleetSupervisor(coordinator, state_dir=tmp_path / "empty")
    with pytest.raises(DurabilityError, match="no run manifest"):
        supervisor.recover(population().clients)


# -- restart / rejoin ----------------------------------------------------------


def test_restart_rejoins_via_checkpoint_exactly_once(tmp_path):
    recorder = EventRecorder()
    coordinator, factory = make_fleet(3, kills=["1@100"], recorder=recorder)
    supervisor = FleetSupervisor(
        coordinator,
        factory=factory,
        state_dir=tmp_path / "state",
        checkpoint_every=50,
        restart_after=40,
    )
    report = supervisor.serve(population().clients, 300)

    assert report.dead_shards == [1]
    assert report.rejoined == [1]
    assert report.restarts == 1
    assert report.health == ["alive", "alive", "alive"]
    assert identity_holds(report)
    restores = [e for e in recorder.events if e["ev"] == "shard_restore"]
    assert len(restores) == 1
    # the death snapshot is always on disk, so the top rung wins
    assert restores[0]["how"] == "checkpoint"
    rejoins = [e for e in recorder.events if e["ev"] == "shard_rejoin"]
    assert rejoins[0]["reconciled"] == report.reconciled
    # traffic returns to the healed shard
    late = [
        e
        for e in recorder.events
        if e["ev"] == "fleet_route" and e["shard"] == 1
        and e["cycle"] > rejoins[0]["cycle"]
    ]
    assert late, "the rejoined shard should take traffic again"


def test_supervised_runs_are_deterministic(tmp_path):
    reports = []
    for run in ("a", "b"):
        coordinator, factory = make_fleet(3, kills=["1@100"], faults=True)
        supervisor = FleetSupervisor(
            coordinator,
            factory=factory,
            state_dir=tmp_path / run,
            checkpoint_every=50,
            restart_after=40,
        )
        reports.append(supervisor.serve(population().clients, 300))
    assert reports[0].restarts == 1
    assert diff_fleet_reports(reports[0], reports[1]) == []


def test_restarts_beat_pure_failover(tmp_path):
    coordinator, factory = make_fleet(3, kills=["1@100"])
    failover_only = FleetSupervisor(coordinator).serve(
        population().clients, 300
    )
    coordinator2, factory2 = make_fleet(3, kills=["1@100"])
    healed = FleetSupervisor(
        coordinator2,
        factory=factory2,
        state_dir=tmp_path / "state",
        checkpoint_every=50,
        restart_after=40,
    ).serve(population().clients, 300)
    assert failover_only.restarts == 0
    assert healed.restarts == 1
    assert healed.availability > failover_only.availability
    assert identity_holds(failover_only)
    assert identity_holds(healed)


def test_restart_budget_zero_is_pure_failover(tmp_path):
    coordinator, factory = make_fleet(2, kills=["1@80"])
    supervisor = FleetSupervisor(
        coordinator,
        factory=factory,
        state_dir=tmp_path / "state",
        restart_after=30,
        restart_budget=0,
    )
    report = supervisor.serve(population().clients, 200)
    assert report.restarts == 0
    assert report.health[1] == "dead"
    assert supervisor._pending == {}


def test_backoff_schedule_is_capped_exponential(tmp_path):
    coordinator, factory = make_fleet(2, kills=["1@80"])
    supervisor = FleetSupervisor(
        coordinator,
        factory=factory,
        state_dir=tmp_path / "state",
        restart_after=10,
        restart_budget=5,
        backoff=3,
        backoff_cap=8,
    )
    supervisor._start(population().clients, 200)
    # pretend two attempts already burned: the third waits
    # restart_after * min(backoff**2, cap) = 10 * 8 cycles
    supervisor._attempts[1] = 2
    while coordinator.health[1] != "dead":
        assert supervisor.step()
    assert supervisor._pending[1] == coordinator._death_cycle[1] + 80
    report = supervisor._loop()
    assert report.restarts == 1
    assert identity_holds(report)


# -- the restore ladder --------------------------------------------------------


def run_to_death(supervisor, coordinator, shard=1, max_cycles=240):
    supervisor._start(population().clients, max_cycles)
    while coordinator.health[shard] != "dead":
        assert supervisor.step()


def test_ladder_falls_back_to_journal_when_snapshots_rot(tmp_path):
    recorder = EventRecorder()
    coordinator, factory = make_fleet(2, kills=["1@80"], recorder=recorder)
    supervisor = FleetSupervisor(
        coordinator,
        factory=factory,
        state_dir=tmp_path / "state",
        checkpoint_every=40,
        restart_after=40,
    )
    run_to_death(supervisor, coordinator)
    for snap in supervisor.stores[1].state_dir.glob("snap-*.json"):
        snap.write_text("garbage\n")
    report = supervisor._loop()

    restores = [e for e in recorder.events if e["ev"] == "shard_restore"]
    assert [e["how"] for e in restores] == ["journal"]
    assert report.restarts == 1
    assert report.health == ["alive", "alive"]
    assert identity_holds(report)


def test_ladder_falls_back_to_fresh_when_journal_rots_too(tmp_path):
    recorder = EventRecorder()
    coordinator, factory = make_fleet(2, kills=["1@80"], recorder=recorder)
    supervisor = FleetSupervisor(
        coordinator,
        factory=factory,
        state_dir=tmp_path / "state",
        checkpoint_every=40,
        restart_after=40,
    )
    run_to_death(supervisor, coordinator)
    for snap in supervisor.stores[1].state_dir.glob("snap-*.json"):
        snap.write_text("garbage\n")
    supervisor.stores[1].journal_path.write_text("not a journal\n")
    report = supervisor._loop()

    restores = [e for e in recorder.events if e["ev"] == "shard_restore"]
    assert [e["how"] for e in restores] == ["fresh"]
    assert report.restarts == 1
    assert identity_holds(report)


def test_ladder_abandons_when_every_rung_fails(tmp_path):
    recorder = EventRecorder()
    coordinator, _ = make_fleet(2, kills=["1@80"], recorder=recorder)

    def broken_factory(shard):
        raise RuntimeError("no spare hardware")

    supervisor = FleetSupervisor(
        coordinator,
        factory=broken_factory,
        state_dir=tmp_path / "state",
        checkpoint_every=40,
        restart_after=30,
        restart_budget=1,
    )
    report = supervisor.serve(population().clients, 200)

    assert report.restarts == 0
    assert report.health[1] == "dead"
    assert report.dead_shards == [1]
    assert identity_holds(report)
    restores = [e for e in recorder.events if e["ev"] == "shard_restore"]
    assert [e["how"] for e in restores] == ["abandoned"]
    states = [
        (e["previous"], e["state"])
        for e in recorder.events
        if e["ev"] == "shard_state" and e["shard"] == 1
    ]
    assert states[-2:] == [("dead", "restoring"), ("restoring", "dead")]


@pytest.mark.parametrize("seed", [1, 5])
def test_soak_all_shards_die_and_heal_never_raises(tmp_path, seed):
    coordinator, factory = make_fleet(2, kills=["0@60", "1@90"])
    supervisor = FleetSupervisor(
        coordinator,
        factory=factory,
        state_dir=tmp_path / f"s{seed}",
        checkpoint_every=30,
        restart_after=50,
    )
    report = supervisor.serve(population(seed=seed).clients, 200)
    # both shards die (the fleet is briefly at zero capacity), both heal
    assert report.dead_shards == [0, 1]
    assert report.restarts == 2
    assert sorted(report.rejoined) == [0, 1]
    assert report.fleet_shed > 0
    assert identity_holds(report)


# -- whole-fleet crash recovery ------------------------------------------------


def test_whole_fleet_crash_recovery_is_deterministic(tmp_path):
    def build(run, crash_at=None):
        coordinator, factory = make_fleet(3, kills=["1@100"], faults=True)
        supervisor = FleetSupervisor(
            coordinator,
            factory=factory,
            state_dir=tmp_path / run,
            checkpoint_every=50,
            restart_after=40,
            crash_at=crash_at,
        )
        return supervisor

    control = build("control").serve(population().clients, 300)

    with pytest.raises(SimulatedCrash):
        build("crashed", crash_at=220).serve(population().clients, 300)
    recovered = build("crashed").recover(population().clients)

    assert recovered.restarts == control.restarts == 1
    assert diff_fleet_reports(control, recovered) == []


def test_recover_falls_back_past_a_torn_fleet_snapshot(tmp_path):
    with pytest.raises(SimulatedCrash):
        coordinator, factory = make_fleet(2, faults=False)
        FleetSupervisor(
            coordinator,
            factory=factory,
            state_dir=tmp_path / "state",
            checkpoint_every=40,
            crash_at=130,
        ).serve(population().clients, 200)
    snaps = sorted((tmp_path / "state").glob("fleet-*.json"))
    # tear the newest boundary: recovery must fall back to the previous one
    torn = snaps[-1]
    torn.write_text(torn.read_text()[: len(torn.read_text()) // 2])

    coordinator, factory = make_fleet(2, faults=False)
    supervisor = FleetSupervisor(
        coordinator,
        factory=factory,
        state_dir=tmp_path / "state",
        checkpoint_every=40,
    )
    report = supervisor.recover(population().clients)
    assert identity_holds(report)

    control_coord, _ = make_fleet(2, faults=False)
    control = FleetSupervisor(control_coord).serve(population().clients, 200)
    assert diff_fleet_reports(control, report) == []


# -- router rebalance + state --------------------------------------------------


def test_affinity_on_shard_up_rebalances_boundedly():
    router = AffinityRouter(migrate=2)
    router.assignments = {"a": 0, "b": 0, "c": 1, "d": 1, "e": 1}
    router._tenant_items = {"a": 50, "b": 10, "c": 40, "d": 30, "e": 5}
    router.on_shard_up(2, None)
    evicted = {"a", "b", "c", "d", "e"} - set(router.assignments)
    # at most `migrate` tenants move, never a shard's top tenant
    assert evicted == {"d", "b"}
    assert router.assignments["a"] == 0
    assert router.assignments["c"] == 1


def test_router_state_round_trips_through_json():
    router = AffinityRouter()
    router.assignments = {"a": 0, "b": 1}
    router._tenant_items = {"a": 12, "b": 3}
    state = json.loads(json.dumps(router.state_dict()))
    fresh = AffinityRouter()
    fresh.load_state(state)
    assert fresh.assignments == {"a": 0, "b": 1}
    assert fresh._tenant_items == {"a": 12, "b": 3}

    rr = RoundRobinRouter()
    rr._turn = 5
    state = json.loads(json.dumps(rr.state_dict()))
    fresh_rr = RoundRobinRouter()
    fresh_rr.load_state(state)
    assert fresh_rr._turn == 5
