"""ServeDaemon control plane: SubmitFeed, QueueSink, HTTP round-trip,
graceful shutdown and the rolling restart via ``pmtree recover``."""

import asyncio
import json

import pytest

from repro.cli import _build_engine
from repro.host.daemon import QueueSink, ServeDaemon, SubmitFeed
from repro.serve import DurableServer
from repro.serve.durability import instance_to_json
from repro.trees import CompleteBinaryTree


def _config(state_dir, **overrides):
    config = {
        "levels": 8,
        "modules": 7,
        "mapping": None,
        "policy": "greedy-pack",
        "traffic": "poisson",
        "arrival_rate": 0.3,
        "clients": 2,
        "cycles": 2_000,
        "workload": "subtree:7=1,path:5=1,level:4=1",
        "queue_capacity": 256,
        "admission": "block",
        "batch_components": 4,
        "deadline": None,
        "think_time": 3,
        "seed": 11,
        "obs": str(state_dir / "telemetry.jsonl"),
        "faults": None,
        "repair": "none",
        "retry_timeout": None,
        "max_retries": 3,
        "backoff_base": 1,
        "backoff_cap": 64,
        "checkpoint_every": 50,
        "events_capacity": 4096,
        "daemon": True,
    }
    config.update(overrides)
    return config


# -- SubmitFeed ----------------------------------------------------------------


def _feed(seed=9):
    return SubmitFeed(0, CompleteBinaryTree(8), seed=seed)


def test_submit_feed_is_deterministic():
    a, b = _feed(), _feed()
    for feed in (a, b):
        feed.submit("subtree", 7, count=3)
        feed.submit("path", 5, tenant="gold")
        feed.submit("composite", 12, count=2, components=3)
    polled_a, polled_b = a.poll_tenants(0), b.poll_tenants(0)
    assert [t for _, t in polled_a] == [None] * 3 + ["gold"] + [None] * 2
    assert [instance_to_json(i) for i, _ in polled_a] == [
        instance_to_json(i) for i, _ in polled_b
    ]


def test_submit_feed_index_picks_the_exact_instance():
    feed = _feed()
    feed.submit("subtree", 7, index=2)
    feed.submit("subtree", 7, index=2)
    first, second = (instance_to_json(i) for i in feed.poll(0))
    assert first == second
    assert feed.backlog == 0
    assert feed.submitted == 2


@pytest.mark.parametrize(
    "kwargs",
    [
        {"kind": "subtree", "size": 7, "count": 0},
        {"kind": "composite", "size": 12, "index": 1},
        {"kind": "level", "size": 4096},  # no such level in an 8-level tree
    ],
)
def test_submit_feed_rejects_bad_submissions(kwargs):
    with pytest.raises(ValueError):
        _feed().submit(**kwargs)


def test_submit_feed_state_round_trips_backlog_and_rng():
    a = _feed(seed=21)
    a.submit("subtree", 7, count=2)
    a.poll_tenants(0)
    a.submit("path", 5, tenant="t0")  # left pending across the checkpoint
    b = _feed(seed=99)
    b.load_state(a.state_dict())
    assert b.state_dict() == a.state_dict()
    assert b.backlog == a.backlog == 1
    # the restored RNG continues the same sample stream
    a.submit("composite", 12)
    b.submit("composite", 12)
    assert [instance_to_json(i) for i in a.poll(1)] == [
        instance_to_json(i) for i in b.poll(1)
    ]


# -- QueueSink -----------------------------------------------------------------


def test_queue_sink_fans_out_and_drops_when_full():
    sink = QueueSink(maxsize=2)
    fast, slow = sink.subscribe(), sink.subscribe()
    sink.on_event({"n": 1})
    assert fast.get_nowait() == {"n": 1}
    sink.on_event({"n": 2})
    sink.on_event({"n": 3})  # slow's queue is now full (1 and 2 unread)
    assert sink.dropped == 1
    assert fast.get_nowait() == {"n": 2}
    assert fast.get_nowait() == {"n": 3}
    assert [slow.get_nowait(), slow.get_nowait()] == [{"n": 1}, {"n": 2}]
    sink.unsubscribe(slow)
    sink.on_event({"n": 4})
    assert sink.dropped == 1  # unsubscribed queues no longer count
    sink.close()
    assert fast.get_nowait() == {"n": 4}
    assert fast.get_nowait() is None  # end-of-stream sentinel


# -- HTTP round-trip and rolling restart ---------------------------------------


async def _request(port, method, path, payload=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    body = b"" if payload is None else json.dumps(payload).encode("utf-8")
    writer.write(
        (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: localhost\r\nConnection: close\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode("ascii")
        + body
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, payload = raw.partition(b"\r\n\r\n")
    return int(head.split(b" ", 2)[1]), payload


async def _wait_listening(daemon, task):
    for _ in range(1_000):
        if daemon._http is not None:
            return
        if task.done():
            task.result()  # surface the startup failure
        await asyncio.sleep(0.01)
    raise TimeoutError("daemon never started listening")


def _start_daemon(tmp_path, **config_overrides):
    config = _config(tmp_path, **config_overrides)
    engine, clients, recorder = _build_engine(config)
    config_path = tmp_path / "config.json"
    config_path.write_text(json.dumps(config, indent=2) + "\n")
    server = DurableServer(
        engine, clients, tmp_path, checkpoint_every=config["checkpoint_every"]
    )
    daemon = ServeDaemon(
        server,
        clients[-1],
        config=config,
        config_path=config_path,
        port=0,
        max_cycles=config["cycles"],
        tick_interval=0.02,
        cycles_per_tick=5,
    )
    return daemon, recorder


def test_daemon_round_trip_then_rolling_restart(tmp_path):
    daemon, recorder = _start_daemon(tmp_path)

    async def scenario():
        task = asyncio.create_task(daemon.run())
        await _wait_listening(daemon, task)
        port = daemon.port

        status, body = await _request(port, "GET", "/status")
        assert status == 200
        snapshot = json.loads(body)
        assert snapshot["active"] is True
        assert snapshot["policy"] == "greedy-pack"

        status, body = await _request(
            port, "POST", "/submit",
            {"kind": "subtree", "size": 7, "count": 2, "tenant": "ops"},
        )
        assert status == 200
        assert json.loads(body)["submitted"] == 2

        status, body = await _request(
            port, "POST", "/submit", {"kind": "composite", "size": 12, "index": 1}
        )
        assert status == 400  # composites cannot be submitted by index

        status, body = await _request(port, "GET", "/events?limit=3")
        assert status == 200
        events = [json.loads(line) for line in body.splitlines()]
        assert len(events) == 3
        assert all("cycle" in event for event in events)

        status, body = await _request(port, "GET", "/metrics")
        assert status == 200
        assert b"# TYPE" in body

        status, body = await _request(
            port, "POST", "/policy", {"policy": "load-aware", "deadline": 400}
        )
        assert status == 200
        applied = json.loads(body)["applied"]
        assert applied == {"policy": "load-aware", "deadline": 400}
        on_disk = json.loads((tmp_path / "config.json").read_text())
        assert on_disk["policy"] == "load-aware"
        assert on_disk["deadline"] == 400

        status, body = await _request(port, "POST", "/policy", {"nope": 1})
        assert status == 400

        status, body = await _request(port, "GET", "/missing")
        assert status == 404

        status, body = await _request(port, "POST", "/shutdown")
        assert status == 200
        report = await asyncio.wait_for(task, timeout=30)
        return report

    report = asyncio.run(scenario())
    assert report is not None
    assert daemon.server.engine.policy.name == "load-aware"
    shutdown_cycle = daemon.server.engine.cycle
    assert 0 < shutdown_cycle < 2_000  # shut down mid-run

    # rolling restart: the shutdown checkpoint covers the whole journal, so
    # recovery replays zero records and resumes the mutated engine
    config = json.loads((tmp_path / "config.json").read_text())
    engine, clients, _ = _build_engine(config)
    assert engine.policy.name == "load-aware"
    server = DurableServer(
        engine, clients, tmp_path, checkpoint_every=config["checkpoint_every"]
    )
    report = server.recover()
    assert server.replayed_records == 0
    assert engine.cycle >= 2_000  # horizon reached (+ drain of in-flight work)
    assert report.cycles == engine.cycle
    assert report.completed >= 2  # the HTTP-submitted work survived recovery


def test_daemon_natural_completion_exits_without_shutdown(tmp_path):
    daemon, recorder = _start_daemon(tmp_path, cycles=40, obs=None)

    async def scenario():
        task = asyncio.create_task(daemon.run())
        await _wait_listening(daemon, task)
        # without a recorder the event stream is declined, not wedged
        status, body = await _request(daemon.port, "GET", "/events")
        assert status == 503
        return await asyncio.wait_for(task, timeout=30)

    report = asyncio.run(scenario())
    assert report is not None
    assert daemon.server.engine.cycle >= 40  # horizon + drain
    assert daemon.server.engine.active is False
