"""Unit tests for the L-template."""

import numpy as np
import pytest

from repro.templates import LTemplate
from repro.trees import CompleteBinaryTree, coords


class TestLTemplate:
    def test_invalid_size(self):
        with pytest.raises(ValueError):
            LTemplate(0)

    def test_count_sums_windows_per_level(self):
        t = CompleteBinaryTree(5)
        fam = LTemplate(4)
        # levels 2..4 admit windows: sizes 4, 8, 16 -> 1 + 5 + 13
        assert fam.count(t) == 1 + 5 + 13

    def test_admits(self):
        assert LTemplate(8).admits(CompleteBinaryTree(4))
        assert not LTemplate(16).admits(CompleteBinaryTree(4))

    def test_instances_are_single_level_consecutive(self):
        t = CompleteBinaryTree(5)
        for inst in LTemplate(4).instances(t):
            levels = {coords.level_of(int(v)) for v in inst.nodes}
            assert len(levels) == 1
            assert np.array_equal(np.diff(np.sort(inst.nodes)), [1, 1, 1])

    def test_windows_do_not_wrap_levels(self):
        t = CompleteBinaryTree(4)
        fam = LTemplate(3)
        for inst in fam.instances(t):
            i = [coords.index_in_level(int(v)) for v in np.sort(inst.nodes)]
            assert i == list(range(i[0], i[0] + 3))

    def test_size_one_counts_every_node(self):
        t = CompleteBinaryTree(4)
        assert LTemplate(1).count(t) == t.num_nodes

    def test_full_level_window(self):
        t = CompleteBinaryTree(4)
        fam = LTemplate(8)
        assert fam.count(t) == 1
        assert fam.instance_at(t, 0).node_set() == set(range(7, 15))

    def test_instance_at_crosses_level_boundaries(self):
        t = CompleteBinaryTree(5)
        fam = LTemplate(4)
        # index 0 is the single level-2 window; index 1 starts level 3
        assert fam.instance_at(t, 0).anchor == 3
        assert fam.instance_at(t, 1).anchor == 7
        assert fam.instance_at(t, 6).anchor == 15

    def test_matrix_matches_windows(self):
        t = CompleteBinaryTree(5)
        fam = LTemplate(4)
        m = fam.instance_matrix(t)
        assert m.shape == (fam.count(t), 4)
        assert np.array_equal(m[0], [3, 4, 5, 6])
