"""Unit tests for the open-loop arrival model."""

import numpy as np
import pytest

from repro.apps import level_sweep_trace
from repro.bench.workloads import heap_workload
from repro.core import ColorMapping, LabelTreeMapping
from repro.memory import ParallelMemorySystem, latency_summary
from repro.obs import EventRecorder
from repro.trees import CompleteBinaryTree


@pytest.fixture(scope="module")
def setup():
    tree = CompleteBinaryTree(11)
    return tree, heap_workload(tree, ops=150)


class TestOpenLoop:
    def test_everything_served(self, setup):
        tree, trace = setup
        mapping = ColorMapping.max_parallelism(tree, 4)
        pms = ParallelMemorySystem(mapping)
        stats = pms.run_open_loop(trace, arrival_interval=3)
        assert stats.total_items == trace.total_items
        served = sum(mod.served for mod in pms.modules)
        assert served == trace.total_items

    def test_slack_arrivals_no_queueing(self, setup):
        """With generous spacing, every request completes almost immediately."""
        tree, trace = setup
        mapping = ColorMapping.max_parallelism(tree, 4)  # CF on these paths
        pms = ParallelMemorySystem(mapping, record_latencies=True)
        pms.run_open_loop(trace, arrival_interval=4)
        assert latency_summary(pms.last_latencies)["max"] <= 4

    def test_overload_builds_queues(self, setup):
        """Back-to-back arrivals of conflicting accesses inflate sojourns."""
        tree, _ = setup
        mapping = LabelTreeMapping(tree, 15)  # conflicts on paths
        trace = heap_workload(tree, ops=150)
        pms = ParallelMemorySystem(mapping, record_latencies=True)
        pms.run_open_loop(trace, arrival_interval=1)
        tight = latency_summary(pms.last_latencies)["p95"]
        pms2 = ParallelMemorySystem(mapping, record_latencies=True)
        pms2.run_open_loop(trace, arrival_interval=4)
        relaxed = latency_summary(pms2.last_latencies)["p95"]
        assert tight > relaxed

    def test_total_cycles_at_least_last_arrival(self, setup):
        tree, trace = setup
        mapping = ColorMapping.max_parallelism(tree, 4)
        stats = ParallelMemorySystem(mapping).run_open_loop(trace, arrival_interval=5)
        assert stats.total_cycles >= (len(trace) - 1) * 5

    def test_interval_validation(self, setup):
        tree, trace = setup
        mapping = ColorMapping.max_parallelism(tree, 4)
        with pytest.raises(ValueError):
            ParallelMemorySystem(mapping).run_open_loop(trace, arrival_interval=0)

    def test_conflict_metric_matches_barrier(self, setup):
        """The per-access conflict bookkeeping is mode-independent."""
        tree, trace = setup
        mapping = LabelTreeMapping(tree, 15)
        barrier = ParallelMemorySystem(mapping).run_trace(trace)
        open_loop = ParallelMemorySystem(mapping).run_open_loop(trace, 2)
        assert barrier.total_conflicts == open_loop.total_conflicts
        assert barrier.max_conflicts == open_loop.max_conflicts

    def test_balanced_mapping_sustains_higher_load(self):
        """Scan stream at interval 1: the balanced mapping keeps sojourns flat."""
        tree = CompleteBinaryTree(11)
        trace = level_sweep_trace(tree, window=15)
        lt = ParallelMemorySystem(LabelTreeMapping(tree, 15), record_latencies=True)
        lt.run_open_loop(trace, arrival_interval=1)
        cm = ParallelMemorySystem(
            ColorMapping.max_parallelism(tree, 4), record_latencies=True
        )
        cm.run_open_loop(trace, arrival_interval=1)
        assert latency_summary(lt.last_latencies)["p95"] < latency_summary(
            cm.last_latencies
        )["p95"]


class TestRecorderSojourns:
    def test_complete_events_match_last_latencies(self, setup):
        """The sojourn stamped on each ``complete`` event is exactly the value
        collected into ``last_latencies`` for that served item."""
        tree, trace = setup
        mapping = LabelTreeMapping(tree, 15)
        recorder = EventRecorder()
        pms = ParallelMemorySystem(
            mapping, record_latencies=True, recorder=recorder
        )
        pms.run_open_loop(trace, arrival_interval=2)
        sojourns = [
            e["sojourn"] for e in recorder.events if e["ev"] == "complete"
        ]
        assert len(sojourns) == trace.total_items
        np.testing.assert_array_equal(
            np.array(sojourns, dtype=np.int64), pms.last_latencies
        )

    def test_reset_clears_last_latencies(self, setup):
        tree, trace = setup
        mapping = ColorMapping.max_parallelism(tree, 4)
        pms = ParallelMemorySystem(mapping, record_latencies=True)
        pms.run_open_loop(trace, arrival_interval=3)
        assert pms.last_latencies is not None
        pms.reset()
        assert pms.last_latencies is None
