"""Unit tests for level-sweep workload generators."""

import numpy as np
import pytest

from repro.apps import level_sweep_trace, reduction_trace
from repro.core import ModuloMapping
from repro.memory import ParallelMemorySystem
from repro.trees import coords


class TestLevelSweep:
    def test_covers_every_node_once(self, tree8):
        trace = level_sweep_trace(tree8, window=8)
        seen = np.concatenate([nodes for _, nodes in trace])
        assert np.array_equal(np.sort(seen), np.arange(tree8.num_nodes))

    def test_window_sizes(self, tree8):
        trace = level_sweep_trace(tree8, window=8)
        for _, nodes in trace:
            assert nodes.size <= 8

    def test_single_level_accesses(self, tree8):
        for _, nodes in level_sweep_trace(tree8, window=16):
            assert len({coords.level_of(int(v)) for v in nodes}) == 1

    def test_bottom_up_order(self, tree8):
        trace = level_sweep_trace(tree8, window=300, top_down=False)
        first_levels = [coords.level_of(int(nodes[0])) for _, nodes in trace]
        assert first_levels == sorted(first_levels, reverse=True)

    def test_invalid_window(self, tree8):
        with pytest.raises(ValueError):
            level_sweep_trace(tree8, window=0)

    def test_modulo_is_good_at_level_sweeps(self, tree8):
        """Sanity: the level-window workload is the baseline's best case."""
        mapping = ModuloMapping(tree8, 8)
        stats = ParallelMemorySystem(mapping).run_trace(level_sweep_trace(tree8, 8))
        assert stats.total_conflicts == 0


class TestReduction:
    def test_accesses_include_parents(self, tree8):
        for _, nodes in reduction_trace(tree8, window=8):
            node_set = {int(v) for v in nodes}
            children = [v for v in node_set if coords.level_of(v) == max(
                coords.level_of(u) for u in node_set)]
            for v in children:
                assert coords.parent(v) in node_set

    def test_all_internal_nodes_touched_as_parents(self, tree8):
        seen = set()
        for _, nodes in reduction_trace(tree8, window=4):
            seen.update(int(v) for v in nodes)
        assert seen == set(range(tree8.num_nodes))

    def test_invalid_window(self, tree8):
        with pytest.raises(ValueError):
            reduction_trace(tree8, window=1)
