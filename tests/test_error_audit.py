"""Error-handling audit: every public constructor rejects bad inputs loudly.

A systematic sweep of invalid arguments across the public API — each case
must raise ``ValueError`` (or the documented exception), never return a
half-constructed object or silently clamp.
"""

import numpy as np
import pytest

from repro.apps import BatchParallelQueue, ParallelMinHeap, RangeQueryTree, StaticDictionary
from repro.core import (
    BasicColorMapping,
    ColorMapping,
    LabelTreeMapping,
    ModuloMapping,
    PathOnlyMapping,
    SubtreeOnlyMapping,
)
from repro.dary import DaryColorMapping, DaryLabelTreeMapping, DaryTree
from repro.memory import FaultModel, MemoryModule, MultiBus
from repro.templates import (
    CompositeSampler,
    LTemplate,
    PTemplate,
    STemplate,
    TPTemplate,
    elementary_family,
)
from repro.trees import CompleteBinaryTree

TREE = CompleteBinaryTree(8)

CASES = [
    # (label, thunk)
    ("tree: zero levels", lambda: CompleteBinaryTree(0)),
    ("tree: negative levels", lambda: CompleteBinaryTree(-3)),
    ("tree: absurd levels", lambda: CompleteBinaryTree(64)),
    ("dary tree: arity 1", lambda: DaryTree(1, 4)),
    ("dary tree: oversized", lambda: DaryTree(8, 20)),
    ("S-template: non-complete size", lambda: STemplate(6)),
    ("S-template: zero", lambda: STemplate(0)),
    ("L-template: zero", lambda: LTemplate(0)),
    ("P-template: zero", lambda: PTemplate(0)),
    ("TP: bad K", lambda: TPTemplate(4, anchor_level=1)),
    ("TP: negative anchor", lambda: TPTemplate(3, anchor_level=-1)),
    ("elementary factory: bad kind", lambda: elementary_family("ring", 3)),
    ("basic color: k zero", lambda: BasicColorMapping(TREE, 0)),
    ("basic color: k above N", lambda: BasicColorMapping(CompleteBinaryTree(2), 5)),
    ("color: N below k", lambda: ColorMapping(TREE, N=1, k=3)),
    ("color: N equals k tall tree", lambda: ColorMapping(TREE, N=3, k=3)),
    ("color general M too small", lambda: ColorMapping.for_modules(TREE, 2)),
    ("label tree: M too small", lambda: LabelTreeMapping(TREE, 2)),
    ("label tree: bad macro", lambda: LabelTreeMapping(TREE, 15, macro_policy="zig")),
    ("label tree: bad rotate", lambda: LabelTreeMapping(TREE, 15, rotate_policy="zag")),
    ("modulo: zero modules", lambda: ModuloMapping(TREE, 0)),
    ("path-only: zero", lambda: PathOnlyMapping(TREE, 0)),
    ("subtree-only: zero", lambda: SubtreeOnlyMapping(TREE, 0)),
    ("dary color: N below k", lambda: DaryColorMapping(DaryTree(3, 4), N=1, k=2)),
    ("dary labeltree: tiny M", lambda: DaryLabelTreeMapping(DaryTree(3, 4), 2)),
    ("module: zero latency", lambda: MemoryModule(module_id=0, latency=0)),
    ("module: zero ports", lambda: MemoryModule(module_id=0, ports=0)),
    ("multibus: zero buses", lambda: MultiBus(0)),
    ("faults: slow latency zero", lambda: FaultModel(slow={0: 0})),
    ("faults: overlap", lambda: FaultModel(slow={1: 2}, failed={1})),
    ("sampler: bad kinds", lambda: CompositeSampler(TREE, kinds=("blob",))),
    ("sampler: empty kinds", lambda: CompositeSampler(TREE, kinds=())),
    ("range query: key count", lambda: RangeQueryTree(TREE, np.arange(3))),
    ("range query: unsorted", lambda: RangeQueryTree(
        TREE, np.arange(TREE.num_leaves)[::-1].copy())),
    ("dictionary: key count", lambda: StaticDictionary(TREE, np.arange(3))),
]


@pytest.mark.parametrize("label,thunk", CASES, ids=[c[0] for c in CASES])
def test_invalid_construction_raises_value_error(label, thunk):
    with pytest.raises(ValueError):
        thunk()


class TestRuntimeErrors:
    def test_heap_overflow_is_overflow_error(self):
        heap = ParallelMinHeap(CompleteBinaryTree(2))
        heap.insert(1)
        heap.insert(2)
        heap.insert(3)
        with pytest.raises(OverflowError):
            heap.insert(4)

    def test_queue_overflow_is_overflow_error(self):
        queue = BatchParallelQueue(CompleteBinaryTree(2))
        with pytest.raises(OverflowError):
            queue.batch_insert(np.arange(10))

    def test_empty_extract_is_index_error(self):
        with pytest.raises(IndexError):
            ParallelMinHeap(CompleteBinaryTree(3)).extract_min()

    def test_messages_name_the_offender(self):
        """Error messages must carry the offending value."""
        try:
            CompleteBinaryTree(-7)
        except ValueError as exc:
            assert "-7" in str(exc)
        try:
            STemplate(12)
        except ValueError as exc:
            assert "12" in str(exc)
        try:
            TREE.check_node(999)
        except ValueError as exc:
            assert "999" in str(exc)
