"""Unit tests for the parallel-access min-heap."""

import pytest

from repro.apps import ParallelMinHeap
from repro.core import ColorMapping
from repro.memory import ParallelMemorySystem
from repro.trees import CompleteBinaryTree, coords


class TestHeapSemantics:
    def test_heapsort(self, rng):
        heap = ParallelMinHeap(CompleteBinaryTree(9))
        values = rng.integers(0, 10**6, 300).tolist()
        for v in values:
            heap.insert(int(v))
        heap.check_invariant()
        drained = [heap.extract_min() for _ in range(len(values))]
        assert drained == sorted(values)
        assert len(heap) == 0

    def test_duplicates(self):
        heap = ParallelMinHeap(CompleteBinaryTree(4))
        for v in [5, 5, 1, 5, 1]:
            heap.insert(v)
        assert [heap.extract_min() for _ in range(5)] == [1, 1, 5, 5, 5]

    def test_peek_does_not_remove(self):
        heap = ParallelMinHeap(CompleteBinaryTree(4))
        heap.insert(3)
        heap.insert(1)
        assert heap.peek_min() == 1
        assert len(heap) == 2

    def test_decrease_key(self):
        heap = ParallelMinHeap(CompleteBinaryTree(4))
        for v in [10, 20, 30, 40]:
            heap.insert(v)
        heap.decrease_key(3, 1)
        heap.check_invariant()
        assert heap.extract_min() == 1

    def test_decrease_key_validation(self):
        heap = ParallelMinHeap(CompleteBinaryTree(4))
        heap.insert(5)
        with pytest.raises(ValueError):
            heap.decrease_key(0, 10)  # not a decrease
        with pytest.raises(IndexError):
            heap.decrease_key(3, 1)

    def test_empty_and_full(self):
        heap = ParallelMinHeap(CompleteBinaryTree(2))
        with pytest.raises(IndexError):
            heap.extract_min()
        with pytest.raises(IndexError):
            heap.peek_min()
        for v in range(3):
            heap.insert(v)
        with pytest.raises(OverflowError):
            heap.insert(99)


class TestHeapTrace:
    def test_insert_records_path_to_root(self):
        heap = ParallelMinHeap(CompleteBinaryTree(5))
        for v in range(6):
            heap.insert(v)
        label, nodes = list(heap.trace)[-1]
        assert label == "heap-insert"
        # slot 5's path: 5, 2, 0
        assert nodes.tolist() == [5, 2, 0]

    def test_trace_accesses_are_ascending_paths(self, rng):
        heap = ParallelMinHeap(CompleteBinaryTree(8))
        for v in rng.integers(0, 1000, 100):
            heap.insert(int(v))
        for _ in range(50):
            heap.extract_min()
        for label, nodes in heap.trace:
            for a, b in zip(nodes, nodes[1:]):
                assert coords.parent(int(a)) == int(b)

    def test_cf_mapping_gives_zero_conflict_heap_trace(self, rng):
        """End-to-end motivation: heap ops are conflict-free under COLOR."""
        tree = CompleteBinaryTree(9)
        heap = ParallelMinHeap(tree)
        for v in rng.integers(0, 10**6, 200):
            heap.insert(int(v))
        for _ in range(100):
            heap.extract_min()
        mapping = ColorMapping(tree, N=9, k=2)  # CF on P(9) = all paths here
        stats = ParallelMemorySystem(mapping).run_trace(heap.trace)
        assert stats.total_conflicts == 0
