"""Failure-injection tests: how the guarantees degrade under module faults."""

import numpy as np
import pytest

from repro.analysis import family_cost
from repro.core import ColorMapping, ModuloMapping
from repro.memory import (
    FaultModel,
    ParallelMemorySystem,
    RemappedMapping,
    apply_faults,
)
from repro.templates import PTemplate, STemplate


class TestFaultModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultModel(slow={0: 0})
        with pytest.raises(ValueError):
            FaultModel(slow={1: 2}, failed={1})
        FaultModel(slow={1: 2}, failed={2}).validate_against(5)
        with pytest.raises(ValueError):
            FaultModel(failed={9}).validate_against(5)
        with pytest.raises(ValueError):
            FaultModel(failed={0, 1}).validate_against(2)


class TestRemappedMapping:
    def test_no_nodes_left_on_dead_modules(self, tree12):
        base = ColorMapping.max_parallelism(tree12, 4)
        remapped = RemappedMapping(base, frozenset({0, 3}))
        colors = remapped.color_array()
        assert 0 not in colors and 3 not in colors
        remapped.validate()

    def test_survivor_nodes_untouched(self, tree12):
        base = ColorMapping.max_parallelism(tree12, 4)
        remapped = RemappedMapping(base, frozenset({2}))
        base_colors = base.color_array()
        keep = base_colors != 2
        assert np.array_equal(remapped.color_array()[keep], base_colors[keep])

    def test_requires_failures(self, tree12):
        base = ModuloMapping(tree12, 9)
        with pytest.raises(ValueError):
            RemappedMapping(base, frozenset())

    def test_remap_destroys_conflict_freeness(self, tree12):
        """The structural point: CF is a property of the intact mapping."""
        base = ColorMapping(tree12, N=6, k=2)
        assert family_cost(base, PTemplate(6)) == 0
        remapped = RemappedMapping(base, frozenset({1}))
        # some path now collides on a survivor module
        assert family_cost(remapped, PTemplate(6)) >= 1

    def test_degradation_is_bounded(self, tree12):
        """One dead module among M adds only O(1) conflicts per template."""
        base = ColorMapping.max_parallelism(tree12, 4)
        remapped = RemappedMapping(base, frozenset({5}))
        assert family_cost(remapped, STemplate(15)) <= family_cost(
            base, STemplate(15)
        ) + 3


class TestApplyFaults:
    def test_slow_module_stretches_cycles(self, tree12):
        mapping = ColorMapping.max_parallelism(tree12, 4)
        nodes = PTemplate(11).instance_at(tree12, 40).nodes
        healthy = ParallelMemorySystem(mapping).access(nodes).cycles
        colors = mapping.colors_of(nodes)
        slow_module = int(colors[0])
        pms = apply_faults(mapping, FaultModel(slow={slow_module: 6}))
        degraded = pms.access(nodes).cycles
        assert degraded >= healthy + 5  # the slow bank's service dominates

    def test_failed_module_system_still_serves_everything(self, tree12):
        mapping = ColorMapping.max_parallelism(tree12, 4)
        pms = apply_faults(mapping, FaultModel(failed={0}))
        nodes = STemplate(15).instance_at(tree12, 7).nodes
        result = pms.access(nodes)
        assert result.module_counts.sum() == nodes.size
        assert result.module_counts[0] == 0

    def test_unknown_module_rejected(self, tree12):
        mapping = ModuloMapping(tree12, 9)
        with pytest.raises(ValueError):
            apply_faults(mapping, FaultModel(failed={20}))

    def test_quantified_degradation_under_faults(self, tree12):
        """Heap workload: one dead module costs extra cycles but not collapse."""
        from repro.bench.workloads import heap_workload

        mapping = ColorMapping.max_parallelism(tree12, 4)
        trace = heap_workload(tree12, ops=150)
        healthy = ParallelMemorySystem(mapping).run_trace(trace).total_cycles
        faulted = apply_faults(mapping, FaultModel(failed={2})).run_trace(trace)
        assert healthy <= faulted.total_cycles <= 2 * healthy
