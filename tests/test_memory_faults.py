"""Failure-injection tests: how the guarantees degrade under module faults."""

import numpy as np
import pytest

from repro.analysis import family_cost
from repro.core import ColorMapping, ModuloMapping
from repro.memory import (
    ColorRepairMapping,
    FaultModel,
    FaultSchedule,
    FaultWindow,
    ParallelMemorySystem,
    RemappedMapping,
    apply_faults,
    parse_faults,
    repair_comparison,
)
from repro.templates import PTemplate, STemplate


class TestFaultModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultModel(slow={0: 0})
        with pytest.raises(ValueError):
            FaultModel(slow={1: 2}, failed={1})
        FaultModel(slow={1: 2}, failed={2}).validate_against(5)
        with pytest.raises(ValueError):
            FaultModel(failed={9}).validate_against(5)
        with pytest.raises(ValueError):
            FaultModel(failed={0, 1}).validate_against(2)


class TestRemappedMapping:
    def test_no_nodes_left_on_dead_modules(self, tree12):
        base = ColorMapping.max_parallelism(tree12, 4)
        remapped = RemappedMapping(base, frozenset({0, 3}))
        colors = remapped.color_array()
        assert 0 not in colors and 3 not in colors
        remapped.validate()

    def test_survivor_nodes_untouched(self, tree12):
        base = ColorMapping.max_parallelism(tree12, 4)
        remapped = RemappedMapping(base, frozenset({2}))
        base_colors = base.color_array()
        keep = base_colors != 2
        assert np.array_equal(remapped.color_array()[keep], base_colors[keep])

    def test_requires_failures(self, tree12):
        base = ModuloMapping(tree12, 9)
        with pytest.raises(ValueError):
            RemappedMapping(base, frozenset())

    def test_remap_destroys_conflict_freeness(self, tree12):
        """The structural point: CF is a property of the intact mapping."""
        base = ColorMapping(tree12, N=6, k=2)
        assert family_cost(base, PTemplate(6)) == 0
        remapped = RemappedMapping(base, frozenset({1}))
        # some path now collides on a survivor module
        assert family_cost(remapped, PTemplate(6)) >= 1

    def test_degradation_is_bounded(self, tree12):
        """One dead module among M adds only O(1) conflicts per template."""
        base = ColorMapping.max_parallelism(tree12, 4)
        remapped = RemappedMapping(base, frozenset({5}))
        assert family_cost(remapped, STemplate(15)) <= family_cost(
            base, STemplate(15)
        ) + 3


class TestFaultParsing:
    def test_static_spec_gives_model(self):
        faults = parse_faults("slow=3:2,failed=5")
        assert isinstance(faults, FaultModel)
        assert faults.slow == {3: 2} and faults.failed == frozenset({5})

    def test_timed_spec_gives_schedule(self):
        faults = parse_faults("fail=3@50:400,slow=7:4@100:300,drop=0.02@0:600,seed=9")
        assert isinstance(faults, FaultSchedule)
        assert faults.seed == 9
        assert faults.ever_failed == frozenset({3})
        kinds = sorted(w.kind for w in faults.windows)
        assert kinds == ["drop", "fail", "slow"]

    def test_schedule_rejects_overlapping_windows(self):
        with pytest.raises(ValueError, match="overlap"):
            FaultSchedule(
                [
                    FaultWindow("fail", 3, 10, 50),
                    FaultWindow("fail", 3, 40, 90),
                ]
            )
        # same span on *different* modules is fine
        FaultSchedule(
            [FaultWindow("fail", 3, 10, 50), FaultWindow("fail", 4, 10, 50)]
        )

    def test_window_validation(self):
        with pytest.raises(ValueError):
            FaultWindow("explode", 0, 0)
        with pytest.raises(ValueError):
            FaultWindow("fail", 0, 10, 10)  # empty window
        with pytest.raises(ValueError):
            FaultWindow("slow", 0, 0, latency=1)  # not a slowdown
        with pytest.raises(ValueError):
            FaultWindow("drop", 0, 0, drop_prob=0.0)
        assert FaultWindow("drop", 7, 0, drop_prob=0.5).module == -1

    def test_transitions_sorted(self):
        sched = FaultSchedule.parse("fail=3@50:400,slow=7:4@100:300")
        edges = [(c, e) for c, e, _ in sched.transitions()]
        assert edges == [(50, "start"), (100, "start"), (300, "end"), (400, "end")]
        assert sched.failed_at(60) == frozenset({3})
        assert sched.failed_at(400) == frozenset()

    def test_model_and_schedule_json_round_trip(self):
        model = FaultModel(slow={3: 2}, failed={5})
        assert FaultModel.from_json(model.to_json()).to_json() == model.to_json()
        sched = FaultSchedule.parse("fail=3@50:400,drop=0.02@0:600,seed=9")
        again = FaultSchedule.from_json(sched.to_json())
        assert again.to_json() == sched.to_json()
        assert again.seed == 9

    def test_from_model_lifts_to_open_windows(self):
        sched = FaultSchedule.from_model(FaultModel(slow={3: 2}, failed={5}))
        assert sched.ever_failed == frozenset({5})
        assert all(w.start == 0 and w.end is None for w in sched.windows)


class TestColorRepairMapping:
    def test_no_nodes_left_on_dead_modules(self, tree12):
        base = ColorMapping.max_parallelism(tree12, 4)
        repaired = ColorRepairMapping(base, frozenset({0, 3}))
        colors = repaired.color_array()
        assert 0 not in colors and 3 not in colors
        repaired.validate()

    def test_survivor_nodes_untouched(self, tree12):
        base = ColorMapping.max_parallelism(tree12, 4)
        repaired = ColorRepairMapping(base, frozenset({2}))
        base_colors = base.color_array()
        keep = base_colors != 2
        assert np.array_equal(repaired.color_array()[keep], base_colors[keep])

    def test_strictly_beats_oblivious_remap(self, tree12):
        base = ColorMapping.max_parallelism(tree12, 4)
        for failed in ({2}, {0, 7}, {5, 9, 13}):
            comp = repair_comparison(base, failed)
            assert comp["repair"]["total"] < comp["oblivious"]["total"], comp
            assert comp["intact"]["total"] == 0


class TestFaultSchedule:
    def test_pipelined_run_applies_and_replays_windows(self, tree12):
        from repro.bench.workloads import heap_workload
        from repro.obs import EventRecorder

        mapping = ColorMapping.max_parallelism(tree12, 4)
        trace = heap_workload(tree12, ops=120)
        rec = EventRecorder()
        pms = ParallelMemorySystem(mapping, recorder=rec)
        pms.attach_faults(
            FaultSchedule.parse("fail=3@20:200,drop=0.05@0:300,seed=5")
        )
        first = pms.run_trace(trace, pipelined=True)
        dropped_first = pms.dropped
        assert dropped_first > 0
        kinds = [e["ev"] for e in rec.events]
        assert kinds.count("fault_inject") == 2
        assert kinds.count("fault_recover") >= 1
        # reset re-arms the schedule and re-seeds the drop lottery
        pms.reset()
        assert pms.dropped == 0
        assert not pms.modules[3].failed
        second = pms.run_trace(trace, pipelined=True)
        assert second.total_cycles == first.total_cycles
        assert pms.dropped == dropped_first

    def test_forever_dead_module_raises_instead_of_spinning(self, tree12):
        mapping = ColorMapping.max_parallelism(tree12, 4)
        pms = ParallelMemorySystem(mapping)
        pms.attach_faults(FaultSchedule.parse("fail=3@0"))
        nodes = np.flatnonzero(mapping.color_array() == 3)[:4]
        with pytest.raises(RuntimeError, match="fail"):
            pms.access(nodes)

    def test_schedule_validated_on_attach(self, tree12):
        mapping = ColorMapping.max_parallelism(tree12, 4)
        pms = ParallelMemorySystem(mapping)
        with pytest.raises(ValueError):
            pms.attach_faults(FaultSchedule.parse("fail=99@0:10"))

    def test_per_shard_schedule_rng_survives_save_load_mid_stream(
        self, tmp_path
    ):
        """A fleet shard's drop lottery round-trips through save_faults /
        load_faults mid-run: the restored stream *continues* where the saved
        one stood rather than restarting from the seed."""
        from repro.io import load_faults, save_faults
        from repro.memory.faults import per_shard_schedules

        base = FaultSchedule.parse("fail=2@50:80,drop=0.2@0:600,seed=13")
        sched = per_shard_schedules(base, 3)[1]
        sched.rng.random(17)  # burn part of the lottery, as a run would
        sched.cursor = 1  # one fault transition already applied
        path = save_faults(sched, tmp_path / "shard1.json")
        expected = sched.rng.random(8)  # where the saved stream goes next

        restored = load_faults(path)
        assert isinstance(restored, FaultSchedule)
        assert restored.cursor == 1
        assert restored.seed == sched.seed
        assert np.array_equal(restored.rng.random(8), expected)

        # a fresh child schedule (same seed, rewound) draws a different
        # prefix — proof the restored stream continued, not restarted
        rewound = per_shard_schedules(base, 3)[1]
        assert not np.array_equal(rewound.rng.random(8), expected)


class TestApplyFaults:
    def test_slow_module_stretches_cycles(self, tree12):
        mapping = ColorMapping.max_parallelism(tree12, 4)
        nodes = PTemplate(11).instance_at(tree12, 40).nodes
        healthy = ParallelMemorySystem(mapping).access(nodes).cycles
        colors = mapping.colors_of(nodes)
        slow_module = int(colors[0])
        pms = apply_faults(mapping, FaultModel(slow={slow_module: 6}))
        degraded = pms.access(nodes).cycles
        assert degraded >= healthy + 5  # the slow bank's service dominates

    def test_failed_module_system_still_serves_everything(self, tree12):
        mapping = ColorMapping.max_parallelism(tree12, 4)
        pms = apply_faults(mapping, FaultModel(failed={0}))
        nodes = STemplate(15).instance_at(tree12, 7).nodes
        result = pms.access(nodes)
        assert result.module_counts.sum() == nodes.size
        assert result.module_counts[0] == 0

    def test_unknown_module_rejected(self, tree12):
        mapping = ModuloMapping(tree12, 9)
        with pytest.raises(ValueError):
            apply_faults(mapping, FaultModel(failed={20}))

    def test_slow_override_survives_reset(self, tree12):
        """Regression: reset() restores per-module latency to its *base*
        value, so a static slow fault must install its override as the base
        latency or a reused system silently heals between runs."""
        mapping = ColorMapping.max_parallelism(tree12, 4)
        nodes = PTemplate(11).instance_at(tree12, 40).nodes
        slow_module = int(mapping.colors_of(nodes)[0])
        pms = apply_faults(mapping, FaultModel(slow={slow_module: 6}))
        first = pms.access(nodes).cycles
        pms.reset()
        assert pms.modules[slow_module].latency == 6
        assert pms.access(nodes).cycles == first

    def test_color_repair_mode(self, tree12):
        mapping = ColorMapping.max_parallelism(tree12, 4)
        pms = apply_faults(mapping, FaultModel(failed={0}), repair="color")
        assert isinstance(pms.mapping, ColorRepairMapping)
        nodes = STemplate(15).instance_at(tree12, 7).nodes
        result = pms.access(nodes)
        assert result.module_counts.sum() == nodes.size
        assert result.module_counts[0] == 0
        with pytest.raises(ValueError):
            apply_faults(mapping, FaultModel(failed={0}), repair="hope")

    def test_quantified_degradation_under_faults(self, tree12):
        """Heap workload: one dead module costs extra cycles but not collapse."""
        from repro.bench.workloads import heap_workload

        mapping = ColorMapping.max_parallelism(tree12, 4)
        trace = heap_workload(tree12, ops=150)
        healthy = ParallelMemorySystem(mapping).run_trace(trace).total_cycles
        faulted = apply_faults(mapping, FaultModel(failed={2})).run_trace(trace)
        assert healthy <= faulted.total_cycles <= 2 * healthy
