"""Tests for the d-ary LABEL-TREE extension."""

import numpy as np
import pytest

from repro.analysis.conflicts import instance_conflicts
from repro.core import micro_label_index_array
from repro.dary import (
    DaryLabelTreeMapping,
    DaryTree,
    dary_level_instances,
    dary_micro_label_index_array,
    dary_micro_label_list_size,
    dary_path_instances,
    dary_subtree_instances,
)


class TestMicroPattern:
    def test_d2_matches_binary_minus_skipped_index(self):
        """The binary pattern skips Sigma index 2**l - 1 (a paper artifact);
        the d-ary generalization does not — otherwise identical."""
        for m, l in [(4, 2), (5, 3), (6, 4)]:
            dary = dary_micro_label_index_array(m, l, 2)
            binary = micro_label_index_array(m, l)
            compacted = np.where(binary >= (1 << l), binary - 1, binary)
            assert np.array_equal(dary, compacted)

    def test_list_size_consistent_with_pattern(self):
        for d, m, l in [(2, 5, 2), (3, 4, 2), (4, 3, 1), (3, 3, 2)]:
            idx = dary_micro_label_index_array(m, l, d)
            assert idx.max() == dary_micro_label_list_size(m, l, d) - 1
            assert idx.min() == 0

    def test_top_levels_identity(self):
        idx = dary_micro_label_index_array(4, 2, 3)
        assert np.array_equal(idx[:4], np.arange(4))

    def test_sibling_blocks_share_fresh_index(self):
        d, m, l = 3, 3, 2
        idx = dary_micro_label_index_array(m, l, d)
        from repro.dary import coords

        block = d ** (l - 1)
        start = coords.level_start(2, d)
        lasts = [idx[start + h * block + block - 1] for h in range(d ** (m - l))]
        # groups of d consecutive blocks share the index
        for g in range(len(lasts) // d):
            assert len(set(lasts[g * d : (g + 1) * d])) == 1

    def test_within_subtree_paths_conflict_free(self):
        """Full-height paths inside one pattern subtree are rainbow."""
        for d, m, l in [(3, 3, 2), (4, 3, 1), (2, 5, 3)]:
            idx = dary_micro_label_index_array(m, l, d)
            tree = DaryTree(d, m)
            worst = max(
                instance_conflicts(idx, inst) for inst in dary_path_instances(tree, m)
            )
            assert worst == 0

    def test_small_subtrees_conflict_free(self):
        for d, m, l in [(3, 3, 2), (2, 5, 3)]:
            idx = dary_micro_label_index_array(m, l, d)
            tree = DaryTree(d, m)
            worst = max(
                instance_conflicts(idx, inst) for inst in dary_subtree_instances(tree, l)
            )
            assert worst == 0

    def test_invalid(self):
        with pytest.raises(ValueError):
            dary_micro_label_index_array(3, 0, 3)
        with pytest.raises(ValueError):
            dary_micro_label_index_array(2, 3, 3)


class TestDaryLabelTreeMapping:
    @pytest.mark.parametrize("d,M,H", [(3, 13, 6), (4, 21, 5), (2, 15, 10)])
    def test_colors_in_range_and_loads(self, d, M, H):
        tree = DaryTree(d, H)
        lt = DaryLabelTreeMapping(tree, M)
        colors = lt.color_array()
        assert colors.min() >= 0 and colors.max() < M
        loads = lt.module_loads()
        assert loads.sum() == tree.num_nodes
        assert loads.max() / max(1, loads.min()) < 2.0

    def test_conflicts_stay_small(self):
        tree = DaryTree(3, 6)
        M = 13
        lt = DaryLabelTreeMapping(tree, M)
        colors = lt.color_array()
        worst_l = max(
            instance_conflicts(colors, inst) for inst in dary_level_instances(tree, M)
        )
        worst_p = max(
            instance_conflicts(colors, inst) for inst in dary_path_instances(tree, 6)
        )
        # far below the trivial worst case of M-1 / path length - 1
        assert worst_l <= 4
        assert worst_p <= 2

    def test_module_of_matches_color_array(self):
        tree = DaryTree(3, 5)
        lt = DaryLabelTreeMapping(tree, 13)
        colors = lt.color_array()
        for v in range(tree.num_nodes):
            assert lt.module_of(v) == colors[v]

    def test_invalid(self):
        with pytest.raises(ValueError):
            DaryLabelTreeMapping(DaryTree(3, 5), 2)
