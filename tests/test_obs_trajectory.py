"""Perf-trajectory artifacts: fingerprints, persistence, medians, the gate.

Covers the contract between :mod:`repro.obs.trajectory` and the regression
side in :mod:`repro.obs.regress`: artifacts round-trip through JSON with
their identity (config fingerprint) intact, trajectories append rather than
overwrite, ``median_of`` aggregates repeats element-wise, and
:func:`~repro.obs.regress.diff_perf` gates wall time (lower is better) and
throughput (higher is better) with the pinned zero-base semantics.
"""

import json

import pytest

from repro.obs import PerfArtifact, PerfProfiler, PerfTrajectory, median_of
from repro.obs.regress import diff_perf, summarize_perf
from repro.obs.trajectory import (
    ARTIFACT_VERSION,
    config_fingerprint,
    host_fingerprint,
)

CONFIG = {"kind": "demo", "cycles": 100, "seed": 7}


def _artifact(wall=2.0, cps=500.0, name="demo", config=CONFIG, phases=None):
    return PerfArtifact(
        name=name,
        config=dict(config),
        phases=phases
        or {"drain": {"calls": 100, "total_s": wall * 0.8, "self_s": wall * 0.75}},
        throughput={
            "wall_time_s": wall,
            "cycles_per_sec": cps,
            "requests_per_sec": cps / 2,
            "events_per_sec": 0.0,
        },
    )


class TestFingerprint:
    def test_stable_across_key_order(self):
        a = {"x": 1, "y": [1, 2]}
        b = {"y": [1, 2], "x": 1}
        assert config_fingerprint(a) == config_fingerprint(b)

    def test_sensitive_to_values(self):
        assert config_fingerprint({"x": 1}) != config_fingerprint({"x": 2})

    def test_artifact_autofingerprints(self):
        art = _artifact()
        assert art.fingerprint == config_fingerprint(CONFIG)

    def test_host_fingerprint_shape(self):
        host = host_fingerprint()
        assert {"platform", "machine", "python", "cpus"} <= set(host)


class TestArtifact:
    def test_json_round_trip(self):
        art = _artifact()
        clone = PerfArtifact.from_json(json.loads(json.dumps(art.to_json())))
        assert clone == art

    def test_newer_version_rejected(self):
        payload = _artifact().to_json()
        payload["version"] = ARTIFACT_VERSION + 1
        with pytest.raises(ValueError, match="newer"):
            PerfArtifact.from_json(payload)

    def test_from_profiler(self):
        prof = PerfProfiler(calibrate=False)
        prof.start()
        with prof.span("work"):
            pass
        prof.stop()
        prof.count("cycles", 10)
        art = PerfArtifact.from_profiler("demo", prof, CONFIG, repeats=2)
        assert art.name == "demo"
        assert art.repeats == 2
        assert "work" in art.phases
        assert art.wall_time_s == prof.wall_time_s

    def test_scalars_flatten_phases(self):
        scalars = _artifact(wall=2.0).scalars()
        assert scalars["wall_time_s"] == 2.0
        assert scalars["phase.drain.total_s"] == pytest.approx(1.6)
        assert summarize_perf(_artifact()) == scalars


class TestMedianOf:
    def test_elementwise_median(self):
        arts = [_artifact(wall=w, cps=c) for w, c in [(1.0, 90.0), (3.0, 100.0), (2.0, 110.0)]]
        med = median_of(arts)
        assert med.wall_time_s == 2.0
        assert med.throughput["cycles_per_sec"] == 100.0
        assert med.repeats == 3

    def test_mismatched_scenarios_rejected(self):
        with pytest.raises(ValueError, match="different scenarios"):
            median_of([_artifact(), _artifact(config={"kind": "other"})])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            median_of([])


class TestTrajectory:
    def test_append_save_load(self, tmp_path):
        path = tmp_path / "BENCH_demo.json"
        trajectory = PerfTrajectory.open(path, "demo")
        assert len(trajectory) == 0 and trajectory.latest() is None
        trajectory.append(_artifact(wall=1.0))
        trajectory.save(path)
        # a second recording session appends, never overwrites
        again = PerfTrajectory.open(path, "demo")
        again.append(_artifact(wall=2.0))
        again.save(path)
        loaded = PerfTrajectory.load(path)
        assert len(loaded) == 2
        assert loaded.previous().wall_time_s == 1.0
        assert loaded.latest().wall_time_s == 2.0

    def test_foreign_artifact_rejected(self):
        with pytest.raises(ValueError, match="does not belong"):
            PerfTrajectory("demo").append(_artifact(name="other"))

    def test_open_wrong_name_rejected(self, tmp_path):
        path = tmp_path / "BENCH_demo.json"
        t = PerfTrajectory("demo")
        t.append(_artifact())
        t.save(path)
        with pytest.raises(ValueError, match="holds trajectory"):
            PerfTrajectory.open(path, "other")

    def test_single_artifact_file_loads_as_one_entry(self, tmp_path):
        path = tmp_path / "candidate.json"
        path.write_text(json.dumps(_artifact().to_json()))
        loaded = PerfTrajectory.load(path)
        assert len(loaded) == 1
        assert loaded.name == "demo"


class TestDiffPerf:
    def test_identical_passes(self):
        report = diff_perf(_artifact(), _artifact())
        assert report.ok
        gated = {c.metric for c in report.checks}
        assert gated == {
            "wall_time_s",
            "cycles_per_sec",
            "requests_per_sec",
            "events_per_sec",
        }

    def test_wall_growth_fails(self):
        report = diff_perf(_artifact(wall=1.0), _artifact(wall=2.0), max_wall_growth=0.5)
        assert not report.ok
        failing = [c.metric for c in report.checks if not c.ok]
        assert failing == ["wall_time_s"]

    def test_throughput_drop_fails(self):
        report = diff_perf(
            _artifact(cps=1000.0), _artifact(cps=100.0), max_throughput_drop=0.5
        )
        assert not report.ok
        failing = {c.metric for c in report.checks if not c.ok}
        assert failing == {"cycles_per_sec", "requests_per_sec"}

    def test_throughput_gain_always_passes(self):
        report = diff_perf(
            _artifact(wall=2.0, cps=100.0),
            _artifact(wall=1.0, cps=1000.0),
            max_throughput_drop=0.0,
        )
        assert report.ok

    def test_zero_base_throughput_stays_green(self):
        # events_per_sec is 0 -> 0 in both: pinned as 0.0 growth, passes
        report = diff_perf(_artifact(), _artifact(), max_throughput_drop=0.0)
        events = next(c for c in report.checks if c.metric == "events_per_sec")
        assert events.growth == 0.0 and events.ok

    def test_sub_millisecond_baseline_skips_gate(self):
        report = diff_perf(
            _artifact(wall=0.0001), _artifact(wall=1.0), min_wall_s=0.001
        )
        assert report.checks == []
        assert report.ok

    def test_trajectory_sources_use_latest_entry(self, tmp_path):
        path = tmp_path / "BENCH_demo.json"
        t = PerfTrajectory("demo")
        t.append(_artifact(wall=9.0))  # stale entry must be ignored
        t.append(_artifact(wall=1.0))
        t.save(path)
        report = diff_perf(path, _artifact(wall=1.1), max_wall_growth=0.5)
        assert report.ok

    def test_empty_trajectory_rejected(self, tmp_path):
        path = tmp_path / "BENCH_demo.json"
        PerfTrajectory("demo").save(path)
        with pytest.raises(ValueError, match="no entries"):
            diff_perf(path, _artifact())
