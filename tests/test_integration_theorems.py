"""Integration tests: every quantitative claim of the paper, measured.

One test (class) per theorem/lemma of Sections 3-6; the benches in
``benchmarks/`` re-run these at larger scale and record the numbers in
EXPERIMENTS.md — here we pin the claims at CI-friendly sizes.
"""


import numpy as np
import pytest

from repro.analysis import bounds, family_cost
from repro.analysis.conflicts import instance_conflicts
from repro.core import ColorMapping, LabelTreeMapping, max_parallelism_params
from repro.templates import (
    CompositeSampler,
    LTemplate,
    PTemplate,
    STemplate,
)
from repro.trees import CompleteBinaryTree

M3 = max_parallelism_params(3)[2]  # 7
M4 = max_parallelism_params(4)[2]  # 15


@pytest.fixture(scope="module")
def tree14():
    return CompleteBinaryTree(14)


@pytest.fixture(scope="module")
def color_m3(tree14):
    return ColorMapping.max_parallelism(tree14, 3)


@pytest.fixture(scope="module")
def color_m4(tree14):
    return ColorMapping.max_parallelism(tree14, 4)


@pytest.fixture(scope="module")
def label_m4(tree14):
    return LabelTreeMapping(tree14, M4)


class TestLemma3Paths:
    """COLOR on P(D): at most 2*ceil(D/M) - 1 conflicts.

    Long paths need ``D`` levels of tree, so the deep-ratio sweep runs at
    M=3 (m=2), where D/M reaches 4 inside a 14-level tree.
    """

    @pytest.mark.parametrize("D", [7, 8, 13, 14])
    def test_bound_holds_m3(self, color_m3, D):
        measured = family_cost(color_m3, PTemplate(D))
        assert measured <= bounds.lemma3_path_bound(D, M3)

    @pytest.mark.parametrize("D", [3, 6, 9, 12])
    def test_bound_holds_deep_ratios(self, tree14, D):
        mapping = ColorMapping.max_parallelism(tree14, 2)  # M = 3
        measured = family_cost(mapping, PTemplate(D))
        assert measured <= bounds.lemma3_path_bound(D, 3)

    def test_conflicts_grow_linearly_in_D(self, tree14):
        """Shape: cost at D = 4M clearly above cost at D = M."""
        mapping = ColorMapping.max_parallelism(tree14, 2)
        small = family_cost(mapping, PTemplate(3))
        large = family_cost(mapping, PTemplate(12))
        assert large > small


class TestLemma4Levels:
    """COLOR on L(D): at most 4*ceil(D/M) conflicts."""

    @pytest.mark.parametrize("D", [7, 10, 14, 21, 35, 56])
    def test_bound_holds(self, color_m3, D):
        measured = family_cost(color_m3, LTemplate(D))
        assert measured <= bounds.lemma4_level_bound(D, M3)


class TestLemma5Subtrees:
    """COLOR on S(D): at most 4*ceil(D/M) - 1 conflicts."""

    @pytest.mark.parametrize("d", [3, 4, 5, 6, 7])
    def test_bound_holds(self, color_m3, d):
        D = (1 << d) - 1
        measured = family_cost(color_m3, STemplate(D))
        assert measured <= bounds.lemma5_subtree_bound(D, M3)


class TestTheorem6Composite:
    """COLOR on C(D, c): at most 4*D/M + c conflicts."""

    @pytest.mark.parametrize("c,target", [(1, 30), (3, 60), (5, 120), (8, 240)])
    def test_bound_holds_on_random_composites(self, tree14, color_m4, c, target):
        rng = np.random.default_rng(c * 1000 + target)
        sampler = CompositeSampler(tree14)
        colors = color_m4.color_array()
        for _ in range(20):
            comp = sampler.sample(c, target_size=target, rng=rng)
            measured = instance_conflicts(colors, comp)
            assert measured <= bounds.thm6_composite_bound(comp.size, M4, c)


class TestLemma7LabelTreeElementary:
    """LABEL-TREE on elementary templates of size D: O(D / sqrt(M log M))."""

    # generous explicit constant; the bench fits the actual one (~1)
    CONST = 4.0

    @pytest.mark.parametrize("D", [15, 30, 60, 120])
    def test_levels(self, label_m4, D):
        measured = family_cost(label_m4, LTemplate(D))
        assert measured <= self.CONST * bounds.labeltree_elementary_scale(D, M4) + 2

    @pytest.mark.parametrize("D", [8, 11, 14])
    def test_paths(self, label_m4, D):
        measured = family_cost(label_m4, PTemplate(D))
        assert measured <= self.CONST * bounds.labeltree_elementary_scale(D, M4) + 2

    @pytest.mark.parametrize("d", [4, 5, 6, 7])
    def test_subtrees(self, label_m4, d):
        D = (1 << d) - 1
        measured = family_cost(label_m4, STemplate(D))
        assert measured <= self.CONST * bounds.labeltree_elementary_scale(D, M4) + 2


class TestTheorem8LabelTreeComposite:
    """LABEL-TREE on C(D, c): O(D / sqrt(M log M) + c)."""

    @pytest.mark.parametrize("c", [2, 4, 8])
    def test_bound_shape(self, tree14, label_m4, c):
        rng = np.random.default_rng(c)
        sampler = CompositeSampler(tree14)
        colors = label_m4.color_array()
        for _ in range(15):
            comp = sampler.sample(c, target_size=40 * c, rng=rng)
            measured = instance_conflicts(colors, comp)
            assert measured <= 4 * bounds.labeltree_composite_scale(comp.size, M4, c) + 2


class TestSection5vs6Tradeoff:
    """The paper's headline trade-off, at sizes a test can afford.

    COLOR's asymptotic conflict advantage (O(D/M) vs O(D/sqrt(M log M)))
    shows up directly on paths at laptop-scale M; on level windows
    LABEL-TREE's constant is small enough that the crossover lies beyond
    materializable M (the scaling-law bench E10 verifies the slopes), so
    here we assert each algorithm against its own bound.
    """

    def test_color_fewer_conflicts_on_long_paths(self, tree14):
        mapping_c = ColorMapping.max_parallelism(tree14, 2)  # M = 3
        mapping_l = LabelTreeMapping(tree14, 3)
        D = 12  # 4M
        assert family_cost(mapping_c, PTemplate(D)) < family_cost(
            mapping_l, PTemplate(D)
        )

    def test_both_respect_their_level_bounds(self, tree14, color_m4, label_m4):
        D = 8 * M4
        assert family_cost(color_m4, LTemplate(D)) <= bounds.lemma4_level_bound(D, M4)
        assert family_cost(label_m4, LTemplate(D)) <= 4 * bounds.labeltree_elementary_scale(
            D, M4
        )

    def test_labeltree_cheaper_addressing(self, tree14, color_m4, label_m4):
        """LABEL-TREE: O(1)-time table lookups; COLOR: chain chasing."""
        from repro.core import resolve_color_steps

        worst_color_hops = max(
            resolve_color_steps(v, color_m4.N, color_m4.k)[1]
            for v in range(tree14.num_nodes - 50, tree14.num_nodes)
        )
        worst_lt_hops = max(
            label_m4.module_of_no_table(v)[1]
            for v in range(tree14.num_nodes - 50, tree14.num_nodes)
        )
        assert worst_lt_hops <= label_m4.m  # O(log M), height-bounded
        assert worst_color_hops > worst_lt_hops
