"""Unit tests for LABEL-TREE (paper Section 6)."""

import math

import numpy as np
import pytest

from repro.analysis import family_cost, load_report
from repro.core import LabelTreeMapping, label_tree_params
from repro.templates import LTemplate, PTemplate, STemplate
from repro.trees import CompleteBinaryTree


class TestParams:
    def test_m_is_ceil_log(self):
        assert label_tree_params(7)["m"] == 3
        assert label_tree_params(8)["m"] == 3
        assert label_tree_params(9)["m"] == 4
        assert label_tree_params(31)["m"] == 5

    def test_groups_cover_colors(self):
        tree = CompleteBinaryTree(8)
        for M in (7, 31, 63, 100):
            lt = LabelTreeMapping(tree, M)
            all_colors = np.concatenate(lt._groups)
            assert np.array_equal(np.sort(all_colors), np.arange(M))

    def test_group_sizes_nearly_equal(self):
        tree = CompleteBinaryTree(6)
        lt = LabelTreeMapping(tree, 63)
        sizes = [g.size for g in lt._groups]
        assert max(sizes) - min(sizes) <= 1
        assert min(sizes) >= lt.ell

    def test_too_few_modules_rejected(self):
        tree = CompleteBinaryTree(6)
        with pytest.raises(ValueError):
            LabelTreeMapping(tree, 2)


class TestMacroRotate:
    def test_same_path_same_group_distance(self):
        """Same-group subtrees on an ascending chain of layers recur with
        period p when the chain index is fixed."""
        tree = CompleteBinaryTree(12)
        lt = LabelTreeMapping(tree, 31)
        g0 = lt.group_index(0, 0)
        for t in range(1, lt.p):
            assert lt.group_index(t, 0) != g0 or lt.p == 1

    def test_groups_balanced_within_layer(self):
        """MACRO must spread a deep layer's subtrees over all groups."""
        tree = CompleteBinaryTree(12)
        lt = LabelTreeMapping(tree, 31)
        t = 2
        counts = np.bincount(
            [lt.group_index(t, q) for q in range(1 << (t * lt.m))], minlength=lt.p
        )
        assert counts.min() > 0
        assert counts.max() - counts.min() <= 1

    def test_consecutive_same_group_lists_shift_by_one(self):
        """The property Lemma 7's proof uses (see DESIGN.md)."""
        tree = CompleteBinaryTree(12)
        lt = LabelTreeMapping(tree, 31)
        t, q = 2, 3
        a = lt.list_of_subtree(t, q)
        b = lt.list_of_subtree(t, q + lt.p)  # next subtree with the same group
        assert lt.group_index(t, q) == lt.group_index(t, q + lt.p)
        assert np.array_equal(a[1:], b[:-1])

    def test_list_draws_from_assigned_group(self):
        tree = CompleteBinaryTree(10)
        lt = LabelTreeMapping(tree, 63)
        for t, q in [(0, 0), (1, 5), (2, 100)]:
            lst = lt.list_of_subtree(t, q)
            assert lst.size == lt.ell
            assert set(lst.tolist()) <= set(lt.group_of_subtree(t, q).tolist())


class TestAddressing:
    @pytest.mark.parametrize("M", [7, 15, 31, 63])
    def test_three_schemes_agree(self, M, rng):
        tree = CompleteBinaryTree(13)
        lt = LabelTreeMapping(tree, M)
        arr = lt.color_array()
        for v in rng.integers(0, tree.num_nodes, 300):
            v = int(v)
            assert lt.module_of(v) == arr[v]
            color, hops = lt.module_of_no_table(v)
            assert color == arr[v]
            assert hops <= lt.m  # O(log M) without the table

    def test_pattern_table_is_O_of_M(self):
        tree = CompleteBinaryTree(8)
        lt = LabelTreeMapping(tree, 31)
        assert lt._pattern.size == (1 << lt.m) - 1  # ~M entries

    def test_validate(self):
        tree = CompleteBinaryTree(12)
        LabelTreeMapping(tree, 31).validate()


class TestTheorem7:
    @pytest.mark.parametrize("M", [7, 15, 31])
    def test_elementary_conflicts_scale(self, M):
        """O(sqrt(M / log M)) conflicts on elementary templates of size M."""
        tree = CompleteBinaryTree(13)
        lt = LabelTreeMapping(tree, M)
        scale = math.sqrt(M / math.log2(M))
        budget = 3 * scale + 2  # generous constant, the bench fits it tightly
        assert family_cost(lt, LTemplate(M)) <= budget
        if PTemplate(M).admits(tree):
            assert family_cost(lt, PTemplate(M)) <= budget
        if (M + 1) & M == 0:
            assert family_cost(lt, STemplate(M)) <= budget

    @pytest.mark.parametrize("M", [7, 31, 63])
    def test_load_balance_one_plus_o1(self, M):
        tree = CompleteBinaryTree(14)
        lt = LabelTreeMapping(tree, M)
        report = load_report(lt)
        assert report.ratio < 1.25

    def test_load_much_better_than_color(self):
        """The trade-off: LABEL-TREE balances load, COLOR does not."""
        from repro.core import ColorMapping

        tree = CompleteBinaryTree(14)
        lt = LabelTreeMapping(tree, 15)
        cm = ColorMapping.max_parallelism(tree, 4)  # also M = 15
        assert load_report(lt).ratio < 1.1 < load_report(cm).ratio
