"""Unit tests for COLOR's addressing schemes (paper Figs. 4 and 9)."""

import pytest

from repro.core import (
    ChaseTable,
    ColorMapping,
    color_array,
    resolve_color,
    resolve_color_steps,
    resolve_color_with_table,
)
from repro.trees import CompleteBinaryTree, coords


class TestPureResolver:
    @pytest.mark.parametrize("N,k,H", [(4, 2, 11), (5, 3, 12), (3, 1, 9), (6, 4, 13)])
    def test_matches_full_coloring(self, N, k, H):
        colors = color_array(H, N, k)
        for v in range(colors.size):
            assert resolve_color(v, N, k) == colors[v], f"node {v}"

    def test_hops_bounded_by_height(self):
        N, k, H = 4, 2, 16
        for v in [(1 << H) - 2, (1 << H) // 2, (1 << (H - 1)) - 1]:
            _, hops = resolve_color_steps(v, N, k)
            assert hops <= H

    def test_works_beyond_materializable_trees(self):
        """Pure arithmetic: address a node at level 60 of a virtual tree."""
        N, k = 5, 2
        node = (1 << 60) + 12345  # some node at level 60
        color = resolve_color(node, N, k)
        assert 0 <= color < N + 3 - 2 + 3  # within M = N + K - k

    def test_consistency_on_shared_levels_of_virtual_tree(self):
        """The resolver must agree with itself through the inheritance chain:
        a last-in-block node's color equals its distance-N ancestor's."""
        N, k = 5, 2
        half = 1 << (k - 1)
        level = 30
        base = (1 << level) - 1
        node = base + 5 * half + (half - 1)  # last node of block 5
        anc = coords.ancestor(node, N)
        assert resolve_color(node, N, k) == resolve_color(anc, N, k)

    def test_n_equals_k_depth_limit(self):
        assert resolve_color(3, 3, 3) == 3  # inside the single subtree: Sigma
        with pytest.raises(ValueError):
            resolve_color(1 << 4, 3, 3)


class TestChaseTable:
    @pytest.mark.parametrize("N,k,H", [(4, 2, 12), (5, 3, 13), (6, 2, 14), (7, 4, 14)])
    def test_matches_full_coloring(self, N, k, H):
        colors = color_array(H, N, k)
        table = ChaseTable.build(N, k)
        for v in range(0, colors.size, 3):
            got, _ = resolve_color_with_table(v, table)
            assert got == colors[v], f"node {v}"

    def test_lookups_bounded_by_layers(self):
        """O(H / (N-k)) lookups per query — the paper's RETRIEVING-COLOR cost."""
        N, k, H = 5, 2, 15
        table = ChaseTable.build(N, k)
        tree = CompleteBinaryTree(H)
        worst = 0
        for v in range(tree.num_nodes - 1, tree.num_nodes - 200, -1):
            _, lookups = resolve_color_with_table(v, table)
            worst = max(worst, lookups)
        layers = H // (N - k) + 1
        assert worst <= 2 * layers

    def test_table_size_is_subtree_not_tree(self):
        table = ChaseTable.build(6, 2)
        assert table.kind.size == (1 << 6) - 1
        assert table.terminal.size == (1 << 6) - 1

    def test_table_is_readonly(self):
        table = ChaseTable.build(4, 2)
        with pytest.raises(ValueError):
            table.kind[0] = 1

    def test_top_entries_are_identity(self):
        table = ChaseTable.build(5, 3)
        for rel in range((1 << 3) - 1):
            assert table.terminal[rel] == rel


class TestThreeSchemesAgree:
    def test_resolver_table_and_array_identical(self):
        N, k, H = 4, 2, 13
        tree = CompleteBinaryTree(H)
        mapping = ColorMapping(tree, N=N, k=k)
        arr = mapping.color_array()
        table = ChaseTable.build(N, k)
        for v in range(0, tree.num_nodes, 11):
            assert resolve_color(v, N, k) == arr[v]
            assert resolve_color_with_table(v, table)[0] == arr[v]
            assert mapping.module_of(v) == arr[v]
