"""Unit tests for the single-template baselines (paper Section 1.2 context)."""

import pytest

from repro.analysis import cf_modules_required, family_cost
from repro.core import ColorMapping, PathOnlyMapping, SubtreeOnlyMapping
from repro.templates import LTemplate, PTemplate, STemplate
from repro.trees import CompleteBinaryTree


class TestPathOnly:
    @pytest.mark.parametrize("N", [2, 4, 7])
    def test_cf_on_paths_with_minimum_modules(self, tree12, N):
        mapping = PathOnlyMapping(tree12, N)
        assert mapping.num_modules == N
        assert family_cost(mapping, PTemplate(N)) == 0

    def test_N_modules_are_necessary(self):
        """An N-node path is a clique: no mapping does it with N-1."""
        tree = CompleteBinaryTree(4)
        assert cf_modules_required(tree, [PTemplate(4)]) == 4

    def test_fails_subtrees(self, tree12):
        mapping = PathOnlyMapping(tree12, 6)
        assert family_cost(mapping, STemplate(3)) >= 1

    def test_module_of_matches_array(self, tree12):
        mapping = PathOnlyMapping(tree12, 5)
        arr = mapping.color_array()
        for v in range(0, tree12.num_nodes, 111):
            assert mapping.module_of(v) == arr[v]

    def test_longer_paths_wrap(self, tree12):
        mapping = PathOnlyMapping(tree12, 4)
        # an 8-node path revisits each color exactly twice
        assert family_cost(mapping, PTemplate(8)) == 1

    def test_invalid(self, tree12):
        with pytest.raises(ValueError):
            PathOnlyMapping(tree12, 0)


class TestSubtreeOnly:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    @pytest.mark.parametrize("H", [6, 11])
    def test_cf_on_subtrees_with_minimum_modules(self, k, H):
        if H <= k:
            pytest.skip("tree too small")
        tree = CompleteBinaryTree(H)
        mapping = SubtreeOnlyMapping(tree, k)
        K = (1 << k) - 1
        assert mapping.num_modules == K
        assert mapping.colors_used() <= K
        assert family_cost(mapping, STemplate(K)) == 0

    def test_K_modules_are_necessary(self):
        tree = CompleteBinaryTree(5)
        assert cf_modules_required(tree, [STemplate(7)]) == 7

    def test_fails_paths(self, tree12):
        mapping = SubtreeOnlyMapping(tree12, 3)
        assert family_cost(mapping, PTemplate(7)) >= 1

    def test_levels_behave_like_basic_color(self, tree12):
        """Blocks are rainbow, so level windows stay cheap."""
        mapping = SubtreeOnlyMapping(tree12, 3)
        assert family_cost(mapping, LTemplate(7)) <= 2

    def test_module_of_matches_array(self, tree12):
        mapping = SubtreeOnlyMapping(tree12, 3)
        arr = mapping.color_array()
        for v in range(0, tree12.num_nodes, 97):
            assert mapping.module_of(v) == arr[v]

    def test_invalid(self, tree12):
        with pytest.raises(ValueError):
            SubtreeOnlyMapping(tree12, 0)


class TestUnifyingGap:
    """The quantitative pitch of the paper, in one test."""

    def test_color_serves_both_with_fewer_than_sum(self):
        tree = CompleteBinaryTree(13)
        N, k = 6, 3
        K = (1 << k) - 1
        color = ColorMapping(tree, N=N, k=k)
        assert family_cost(color, STemplate(K)) == 0
        assert family_cost(color, PTemplate(N)) == 0
        # strictly between the single-template optimum and their sum
        assert max(N, K) < color.num_modules < N + K

    def test_single_template_mappings_cannot_be_combined_naively(self):
        """Neither single-template optimum is CF on the other family even
        when granted COLOR's module budget."""
        tree = CompleteBinaryTree(13)
        p_only = PathOnlyMapping(tree, 10)  # same M as COLOR(N=6,k=3)
        assert family_cost(p_only, STemplate(7)) >= 1