"""Tests for the binomial-tree extension."""

import numpy as np
import pytest

from repro.analysis import chromatic_number, conflict_graph
from repro.analysis.conflicts import instance_conflicts
from repro.binomial import (
    BinomialTree,
    DepthMapping,
    ProductMapping,
    SubcubeMapping,
    TwistedMapping,
    binomial_depth,
    binomial_parent,
    binomial_path_instances,
    binomial_subtree_instances,
    lowbit_index,
    subtree_roots,
)


class TestAddressing:
    def test_parent_clears_lowest_bit(self):
        assert binomial_parent(0b1011) == 0b1010
        assert binomial_parent(0b1000) == 0
        with pytest.raises(ValueError):
            binomial_parent(0)

    def test_depth_is_popcount(self):
        assert binomial_depth(0) == 0
        assert binomial_depth(0b1011) == 3

    def test_lowbit_index(self):
        assert lowbit_index(0b1000, 5) == 3
        assert lowbit_index(1, 5) == 0
        assert lowbit_index(0, 5) == 5

    def test_children_add_lower_bits(self):
        tree = BinomialTree(4)
        assert tree.children(0b1000) == [0b1001, 0b1010, 0b1100]
        assert tree.children(0) == [1, 2, 4, 8]
        assert tree.children(0b0101) == [] if lowbit_index(0b0101, 4) == 0 else True

    def test_children_parent_inverse(self):
        tree = BinomialTree(6)
        for x in range(tree.num_nodes):
            for c in tree.children(x):
                assert binomial_parent(c) == x

    def test_node_count_and_depths(self):
        tree = BinomialTree(5)
        assert tree.num_nodes == 32
        depths = tree.depths()
        assert depths[0] == 0
        assert depths[31] == 5
        # depth histogram is binomial(5, .)
        assert np.bincount(depths).tolist() == [1, 5, 10, 10, 5, 1]

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            BinomialTree(-1)
        with pytest.raises(ValueError):
            BinomialTree(30)


class TestTemplates:
    def test_subtree_roots_are_aligned(self):
        tree = BinomialTree(5)
        roots = subtree_roots(tree, 2)
        assert np.array_equal(roots, np.arange(0, 32, 4))
        for r in roots:
            assert lowbit_index(int(r), 5) >= 2

    def test_subtree_instances_are_descendant_sets(self):
        tree = BinomialTree(5)
        for inst in binomial_subtree_instances(tree, 2):
            root = int(inst[0])
            for v in inst[1:]:
                # v descends from root: ancestors reach root
                x = int(v)
                while x > root:
                    x = binomial_parent(x)
                assert x == root

    def test_path_instances_are_chains(self):
        tree = BinomialTree(6)
        count = 0
        for inst in binomial_path_instances(tree, 3):
            count += 1
            for a, b in zip(inst, inst[1:]):
                assert binomial_parent(int(a)) == int(b)
        # bottoms are nodes with depth >= 2
        assert count == sum(1 for x in range(64) if binomial_depth(x) >= 2)

    def test_invalid(self):
        tree = BinomialTree(4)
        with pytest.raises(ValueError):
            list(binomial_path_instances(tree, 0))
        with pytest.raises(ValueError):
            subtree_roots(tree, -1)


class TestMappings:
    @pytest.mark.parametrize("n,k", [(5, 1), (6, 2), (7, 3)])
    def test_subcube_cf_and_optimal(self, n, k):
        tree = BinomialTree(n)
        mapping = SubcubeMapping(tree, k)
        colors = mapping.color_array()
        assert all(
            instance_conflicts(colors, inst) == 0
            for inst in binomial_subtree_instances(tree, k)
        )
        assert mapping.num_modules == 1 << k  # instance size = clique

    @pytest.mark.parametrize("n,P", [(5, 3), (6, 4), (7, 5)])
    def test_depth_cf_and_optimal(self, n, P):
        tree = BinomialTree(n)
        mapping = DepthMapping(tree, P)
        colors = mapping.color_array()
        assert all(
            instance_conflicts(colors, inst) == 0
            for inst in binomial_path_instances(tree, P)
        )
        assert mapping.num_modules == P

    @pytest.mark.parametrize("n,k,P", [(6, 2, 3), (7, 3, 4), (8, 2, 4)])
    def test_product_cf_on_both(self, n, k, P):
        tree = BinomialTree(n)
        mapping = ProductMapping(tree, k, P)
        colors = mapping.color_array()
        assert all(
            instance_conflicts(colors, inst) == 0
            for inst in binomial_subtree_instances(tree, k)
        )
        assert all(
            instance_conflicts(colors, inst) == 0
            for inst in binomial_path_instances(tree, P)
        )

    @pytest.mark.parametrize("n,k,P", [(6, 2, 3), (7, 3, 4), (8, 3, 4)])
    def test_twisted_cf_on_both_when_safe(self, n, k, P):
        tree = BinomialTree(n)
        mapping = TwistedMapping(tree, k, P)
        colors = mapping.color_array()
        assert mapping.num_modules == 1 << k
        assert all(
            instance_conflicts(colors, inst) == 0
            for inst in binomial_subtree_instances(tree, k)
        )
        assert all(
            instance_conflicts(colors, inst) == 0
            for inst in binomial_path_instances(tree, P)
        )

    @pytest.mark.parametrize("k,P", [(2, 4), (3, 6), (2, 5)])
    def test_twisted_rejects_unsafe_parameters(self, k, P):
        with pytest.raises(ValueError):
            TwistedMapping(BinomialTree(8), k, P)

    def test_twisted_matches_exact_optimum_small(self):
        """Where the twist applies, 2**k equals the exact chromatic number."""
        n, k, P = 5, 2, 3
        tree = BinomialTree(n)
        instances = list(binomial_subtree_instances(tree, k)) + list(
            binomial_path_instances(tree, P)
        )
        chi = chromatic_number(conflict_graph(instances, tree.num_nodes))
        assert chi == TwistedMapping(tree, k, P).num_modules == 4

    def test_single_template_mappings_fail_other_template(self):
        tree = BinomialTree(6)
        sub = SubcubeMapping(tree, 2).color_array()
        dep = DepthMapping(tree, 3).color_array()
        assert any(
            instance_conflicts(sub, inst) > 0
            for inst in binomial_path_instances(tree, 3)
        )
        assert any(
            instance_conflicts(dep, inst) > 0
            for inst in binomial_subtree_instances(tree, 2)
        )

    def test_invalid_params(self):
        tree = BinomialTree(5)
        with pytest.raises(ValueError):
            SubcubeMapping(tree, 9)
        with pytest.raises(ValueError):
            DepthMapping(tree, 0)
        with pytest.raises(ValueError):
            ProductMapping(tree, 2, 0)
