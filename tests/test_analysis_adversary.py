"""Unit tests for the adversarial composite search."""

import numpy as np
import pytest

from repro.analysis import (
    bounds,
    greedy_adversarial_composite,
    instance_conflicts,
    local_search_composite,
)
from repro.core import ColorMapping
from repro.templates import CompositeSampler
from repro.trees import CompleteBinaryTree


@pytest.fixture(scope="module")
def setup():
    tree = CompleteBinaryTree(12)
    mapping = ColorMapping.max_parallelism(tree, 4)
    mapping.color_array()
    return tree, mapping


class TestGreedyAdversary:
    def test_returns_valid_composite(self, setup, rng):
        _, mapping = setup
        comp = greedy_adversarial_composite(mapping, 4, 100, rng)
        assert comp.num_components == 4
        seen = set()
        for part in comp.components:
            assert seen.isdisjoint(part.node_set())
            seen |= part.node_set()

    def test_beats_or_matches_random_mean(self, setup, rng):
        _, mapping = setup
        tree = mapping.tree
        sampler = CompositeSampler(tree)
        colors = mapping.color_array()
        rand = np.mean([
            instance_conflicts(colors, sampler.sample(4, 100, rng))
            for _ in range(15)
        ])
        adv = instance_conflicts(
            colors, greedy_adversarial_composite(mapping, 4, 100, rng)
        )
        assert adv >= rand

    def test_respects_thm6_bound(self, setup, rng):
        _, mapping = setup
        M = mapping.num_modules
        colors = mapping.color_array()
        for c in (2, 6):
            comp = greedy_adversarial_composite(mapping, c, 8 * M, rng)
            got = instance_conflicts(colors, comp)
            assert got <= bounds.thm6_composite_bound(comp.size, M, c)

    def test_invalid_candidates(self, setup, rng):
        _, mapping = setup
        with pytest.raises(ValueError):
            greedy_adversarial_composite(mapping, 2, 50, rng, candidates=0)


class TestLocalSearch:
    def test_never_decreases_conflicts(self, setup, rng):
        _, mapping = setup
        colors = mapping.color_array()
        start = greedy_adversarial_composite(mapping, 4, 120, rng)
        before = instance_conflicts(colors, start)
        improved = local_search_composite(mapping, start, rng, iters=40)
        assert instance_conflicts(colors, improved) >= before

    def test_preserves_shape(self, setup, rng):
        _, mapping = setup
        start = greedy_adversarial_composite(mapping, 3, 90, rng)
        improved = local_search_composite(mapping, start, rng, iters=20)
        assert improved.num_components == 3
