"""Serving-engine resilience: the retry ladder, repair remapping and the
fault-aware batch policies."""

import numpy as np
import pytest

from repro.core import ColorMapping
from repro.memory import FaultSchedule, ParallelMemorySystem
from repro.obs import EventRecorder
from repro.serve import (
    GreedyPackPolicy,
    PoissonClient,
    Request,
    ServeEngine,
    TemplateMix,
    TraceClient,
)
from repro.templates import STemplate


FAULT_SPEC = "fail=3@40:240,fail=9@120:320,fail=5@300:500,drop=0.05@0:800,seed=7"


@pytest.fixture
def mapping(tree12):
    return ColorMapping.max_parallelism(tree12, 4)


@pytest.fixture
def mix(tree12):
    return TemplateMix.parse(tree12, "composite:21x3=2,subtree:15=1,path:11=1")


def _engine(mapping, *, faults=None, recorder=None, **kwargs):
    system = ParallelMemorySystem(mapping, recorder=recorder)
    if faults is not None:
        system.attach_faults(FaultSchedule.parse(faults))
    kwargs.setdefault("policy", "greedy-pack")
    return ServeEngine(system, **kwargs)


def _run(engine, mix, cycles=800, rate=0.35, seed=11):
    clients = [PoissonClient(0, mix, rate=rate, seed=seed)]
    return engine.run(clients, max_cycles=cycles, drain_limit=50_000)


class TestParameterValidation:
    def test_bad_parameters_rejected(self, mapping):
        with pytest.raises(ValueError):
            _engine(mapping, retry_timeout=0)
        with pytest.raises(ValueError):
            _engine(mapping, max_retries=-1)
        with pytest.raises(ValueError):
            _engine(mapping, backoff_base=16, backoff_cap=8)
        with pytest.raises(ValueError):
            _engine(mapping, repair="pray")


class TestRetryLadder:
    def test_fault_free_run_reports_idle_resilience(self, mapping, mix):
        report = _run(_engine(mapping, retry_timeout=16, repair="color"), mix,
                      cycles=400)
        assert report.retries == 0
        assert report.timeouts == 0
        assert report.aborted_batches == 0
        assert report.availability == 1.0
        assert report.recovery is None

    def test_mid_batch_failure_triggers_retry_and_completes(self, mapping, mix):
        rec = EventRecorder()
        engine = _engine(mapping, faults=FAULT_SPEC, recorder=rec,
                         retry_timeout=16, max_retries=2, repair="color")
        report = _run(engine, mix)
        assert report.retries > 0
        assert report.timeouts > 0
        assert report.aborted_batches > 0
        assert report.completed == report.admitted
        assert report.timeout_shed == 0
        assert report.recovery is not None
        assert report.recovery["max"] >= report.latency["p50"]
        kinds = {e["ev"] for e in rec.events}
        assert "request_timeout" in kinds and "request_retry" in kinds
        retry = next(e for e in rec.events if e["ev"] == "request_retry")
        assert retry["retry_at"] > retry["cycle"]

    def test_forever_dead_module_without_repair_degrades_then_sheds(
        self, tree12, mapping
    ):
        """A subtree pinned to a never-recovering module climbs the whole
        ladder: retries exhaust, degradation cannot dodge a dead bank that
        its root maps to, and the request finally sheds."""
        rec = EventRecorder()
        system = ParallelMemorySystem(mapping, recorder=rec)
        system.attach_faults(FaultSchedule.parse("fail=3@0"))
        engine = ServeEngine(
            system, policy="fifo", retry_timeout=8, max_retries=1,
            backoff_base=2, backoff_cap=4, repair="none",
        )
        # a single-node request on the dead module cannot degrade at all
        node = int(np.flatnonzero(mapping.color_array() == 3)[0])
        instance = STemplate(1).instance_at(tree12, node)
        client = TraceClient(0, _single_access_trace(instance), interval=1)
        report = engine.run([client], max_cycles=4, drain_limit=10_000)
        assert report.timeout_shed == 1
        assert report.shed == 1
        assert report.completed == 0
        sheds = [e for e in rec.events if e["ev"] == "serve_shed"]
        assert sheds and sheds[0]["reason"] == "timeout"

    def test_availability_accounts_failed_cycles(self, mapping, mix):
        report = _run(
            _engine(mapping, faults=FAULT_SPEC, retry_timeout=16, repair="color"),
            mix,
        )
        assert 0.9 < report.availability < 1.0


def _single_access_trace(instance):
    from repro.memory import AccessTrace

    trace = AccessTrace()
    trace.add(instance.nodes, label=instance.kind)
    return trace


class TestRepairModes:
    def test_repair_avoids_dead_modules_entirely(self, mapping, mix):
        """With repair active, no dispatch ever lands on a failed module."""
        rec = EventRecorder()
        engine = _engine(mapping, faults=FAULT_SPEC, recorder=rec,
                         retry_timeout=16, repair="color")
        _run(engine, mix)
        repairs = [e for e in rec.events if e["ev"] == "repair"]
        assert repairs, "failed-set changes must emit repair events"
        assert all(e["mode"] == "color" for e in repairs)
        # at least one swap moved nodes off a dead module
        assert any(e["moved"] > 0 for e in repairs)

    def test_color_repair_not_worse_than_oblivious(self, mapping, mix):
        color = _run(
            _engine(mapping, faults=FAULT_SPEC, retry_timeout=16, repair="color"),
            mix,
        )
        oblivious = _run(
            _engine(mapping, faults=FAULT_SPEC, retry_timeout=16,
                    repair="oblivious"),
            mix,
        )
        assert color.arrivals == oblivious.arrivals
        assert color.goodput >= oblivious.goodput

    def test_deterministic_replay(self, mapping, mix):
        a = _run(_engine(mapping, faults=FAULT_SPEC, retry_timeout=16,
                         repair="color"), mix)
        b = _run(_engine(mapping, faults=FAULT_SPEC, retry_timeout=16,
                         repair="color"), mix)
        assert a.cycles == b.cycles
        assert a.retries == b.retries
        assert a.goodput == b.goodput


class TestFaultAwarePolicies:
    def test_policy_defers_requests_on_failed_modules(self, tree12, mapping):
        """When clean alternatives exist, the policy packs only requests
        that avoid the failed set."""
        policy = GreedyPackPolicy(max_components=4, bound_k=mapping.k)
        family = STemplate(7)
        colors = mapping.color_array()
        reqs = []
        for i, root in enumerate((1, 2, 15, 16)):
            inst = family.instance_at(tree12, root)
            reqs.append(Request(i, 0, inst, arrival_cycle=0))
        dirty_module = int(colors[reqs[0].nodes[0]])
        batch = policy.form(reqs, mapping, avoid=frozenset({dirty_module}))
        for req in batch.requests:
            assert dirty_module not in set(
                int(c) for c in mapping.colors_of(req.nodes)
            )

    def test_all_dirty_falls_back_to_head(self, tree12, mapping):
        policy = GreedyPackPolicy(max_components=4, bound_k=mapping.k)
        inst = STemplate(15).instance_at(tree12, 1)
        req = Request(0, 0, inst, arrival_cycle=0)
        touched = frozenset(int(c) for c in mapping.colors_of(inst.nodes))
        batch = policy.form([req], mapping, avoid=touched)
        assert batch.requests == (req,)
