"""Unit tests for the bench harness internals (report, sweep, charts, workloads)."""

import numpy as np
import pytest

from repro.bench import (
    EXPERIMENTS,
    ExperimentResult,
    Series,
    conflict_series,
    heap_workload,
    mixed_workload,
    range_query_workload,
    render_chart,
    render_figures,
    render_markdown,
    render_table,
)
from repro.bench.ablations import ABLATIONS
from repro.core import ColorMapping, ModuloMapping
from repro.trees import CompleteBinaryTree


class TestReport:
    def _result(self):
        r = ExperimentResult(
            exp_id="T1", title="test", claim="c", columns=["a", "b"]
        )
        r.add_row(1, 2.5)
        r.add_row("x", 3)
        return r

    def test_add_row_validates_width(self):
        r = self._result()
        with pytest.raises(ValueError):
            r.add_row(1)

    def test_require_flips_holds(self):
        r = self._result()
        assert r.holds
        r.require(True)
        assert r.holds
        r.require(False)
        assert not r.holds
        r.require(True)
        assert not r.holds  # sticky

    def test_render_table_alignment(self):
        txt = render_table(["col", "x"], [(1, 22), (333, 4)])
        lines = txt.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_render_markdown_structure(self):
        md = render_markdown(self._result())
        assert md.startswith("### T1")
        assert "| a | b |" in md
        assert "2.500" in md  # float formatting
        assert "yes" in md

    def test_str_contains_status(self):
        r = self._result()
        r.require(False)
        assert "NO" in str(r)

    def test_render_csv(self):
        from repro.bench.report import render_csv

        csv_text = render_csv(self._result())
        lines = csv_text.strip().splitlines()
        assert lines[0] == "experiment,a,b"
        assert lines[1] == "T1,1,2.500"
        assert len(lines) == 3


class TestRegistry:
    def test_ids_are_unique_and_well_formed(self):
        ids = list(EXPERIMENTS) + list(ABLATIONS)
        assert len(set(ids)) == len(ids)
        for exp_id in ids:
            assert exp_id[0] in "EAX"
            assert exp_id[1:].isdigit()

    def test_every_registered_fn_returns_result(self):
        # spot-check two cheap ones at quick scale
        for exp_id in ("E3", "A1"):
            from repro.bench.experiments import run_experiment

            result = run_experiment(exp_id, "quick")
            assert isinstance(result, ExperimentResult)
            assert result.exp_id == exp_id
            assert result.rows


class TestSweepAndCharts:
    def _mappings(self):
        tree = CompleteBinaryTree(11)
        return [
            ("a", ColorMapping.max_parallelism(tree, 3)),
            ("b", ModuloMapping(tree, 7)),
        ]

    def test_series_validation(self):
        with pytest.raises(ValueError):
            Series(label="x", xs=(1.0,), ys=(1.0, 2.0))
        with pytest.raises(ValueError):
            Series(label="x", xs=(), ys=())

    def test_conflict_series_shapes(self):
        series = conflict_series(self._mappings(), "level", [7, 14, 28])
        assert len(series) == 2
        for s in series:
            assert len(s.xs) == 3
            assert all(y >= 0 for y in s.ys)

    def test_reference_series_appended(self):
        series = conflict_series(
            self._mappings(), "level", [7, 14], reference=lambda D: D / 7
        )
        assert series[-1].label == "bound"
        assert series[-1].ys == (1.0, 2.0)

    def test_subtree_sizes_round_up(self):
        series = conflict_series(self._mappings(), "subtree", [10])
        assert series[0].xs == (15.0,)  # next 2**d - 1

    def test_render_chart_contains_markers_and_legend(self):
        series = conflict_series(self._mappings(), "level", [7, 14, 28])
        chart = render_chart(series, title="t")
        assert "t" in chart.splitlines()[0]
        assert "o = a" in chart and "x = b" in chart
        assert "|" in chart

    def test_render_chart_validation(self):
        with pytest.raises(ValueError):
            render_chart([])
        series = conflict_series(self._mappings(), "level", [7])
        with pytest.raises(ValueError):
            render_chart(series, width=3)

    def test_render_figures_markdown(self):
        md = render_figures("quick")
        assert md.startswith("## Figures")
        assert md.count("```") % 2 == 0
        assert "F1" in md and "F3" in md


class TestWorkloads:
    def test_heap_workload_reproducible(self):
        tree = CompleteBinaryTree(9)
        a = heap_workload(tree, ops=80, seed=4)
        b = heap_workload(tree, ops=80, seed=4)
        assert len(a) == len(b)
        for (la, na), (lb, nb) in zip(a, b):
            assert la == lb and np.array_equal(na, nb)

    def test_range_query_workload_size(self):
        tree = CompleteBinaryTree(9)
        trace = range_query_workload(tree, queries=12)
        assert len(trace) == 12
        assert set(trace.labels()) == {"range-query"}

    def test_mixed_workload_labels(self):
        tree = CompleteBinaryTree(9)
        labels = set(mixed_workload(tree).labels())
        assert {"level-sweep", "range-query"} <= labels
        assert any(label.startswith("heap") for label in labels)
