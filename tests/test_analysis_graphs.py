"""Unit tests for the networkx conflict-graph utilities."""

import networkx as nx

from repro.analysis import (
    chromatic_number,
    conflict_graph,
    conflict_graph_stats,
    conflict_nx_graph,
)
from repro.templates import PTemplate, STemplate
from repro.trees import CompleteBinaryTree


class TestNxGraph:
    def test_path_family_gives_expected_edges(self):
        tree = CompleteBinaryTree(3)
        graph = conflict_nx_graph(tree, [PTemplate(2)])
        # P(2) instances are (child, parent) pairs: exactly the tree edges
        assert graph.number_of_edges() == tree.num_nodes - 1
        assert nx.is_connected(graph)

    def test_subtree_family_cliques(self):
        tree = CompleteBinaryTree(3)
        graph = conflict_nx_graph(tree, [STemplate(3)])
        # S(3) instances: {0,1,2}, {1,3,4}, {2,5,6} -> 3 triangles
        assert graph.number_of_edges() == 9
        for root, kids in [(0, (1, 2)), (1, (3, 4)), (2, (5, 6))]:
            assert graph.has_edge(root, kids[0]) and graph.has_edge(*kids)

    def test_matches_adjacency_builder(self):
        tree = CompleteBinaryTree(4)
        fams = [STemplate(3), PTemplate(4)]
        graph = conflict_nx_graph(tree, fams)
        instances = [inst for fam in fams for inst in fam.instances(tree)]
        adj = conflict_graph(instances, tree.num_nodes)
        assert graph.number_of_edges() == sum(len(s) for s in adj) // 2


class TestStats:
    def test_bounds_sandwich_exact_chromatic(self):
        tree = CompleteBinaryTree(4)
        fams = [STemplate(3), PTemplate(4)]
        stats = conflict_graph_stats(tree, fams)
        instances = [inst for fam in fams for inst in fam.instances(tree)]
        exact = chromatic_number(conflict_graph(instances, tree.num_nodes))
        assert stats.clique_lower_bound <= exact <= stats.greedy_upper_bound

    def test_fields_consistent(self):
        tree = CompleteBinaryTree(4)
        stats = conflict_graph_stats(tree, [PTemplate(3)])
        assert stats.nodes == tree.num_nodes
        assert 0 < stats.density < 1
        assert stats.max_degree >= 2
        assert stats.clique_lower_bound == 3
