"""Unit tests for serve requests, degradation, and admission control."""

import numpy as np
import pytest

from repro.serve import AdmissionQueue, Request, degrade_instance
from repro.templates import (
    CompositeSampler,
    LTemplate,
    PTemplate,
    STemplate,
    TemplateInstance,
    make_composite,
)
from repro.trees import CompleteBinaryTree


@pytest.fixture(scope="module")
def tree():
    return CompleteBinaryTree(10)


def _request(instance, request_id=0, client_id=0, arrival=0, deadline=None):
    return Request(
        request_id=request_id,
        client_id=client_id,
        instance=instance,
        arrival_cycle=arrival,
        deadline=deadline,
    )


class TestRequest:
    def test_lifecycle_and_sojourn(self, tree):
        req = _request(STemplate(7).instance_at(tree, 0), arrival=5)
        assert not req.completed
        with pytest.raises(ValueError):
            _ = req.sojourn
        req.complete_cycle = 12
        assert req.sojourn == 7

    def test_deadline_miss(self, tree):
        req = _request(PTemplate(4).instance_at(tree, 0), arrival=0, deadline=3)
        req.complete_cycle = 4
        assert req.missed_deadline
        req.complete_cycle = 3
        assert not req.missed_deadline

    def test_component_count(self, tree):
        elem = _request(STemplate(7).instance_at(tree, 0))
        assert elem.num_components == 1
        comp = CompositeSampler(tree).sample(3, 20, np.random.default_rng(0))
        assert _request(comp).num_components == 3


class TestDegrade:
    def test_path_keeps_bottom_half(self, tree):
        inst = PTemplate(8).instance_at(tree, 0)
        smaller = degrade_instance(inst)
        assert smaller.kind == "path"
        assert smaller.size == 4
        # bottom-up storage: the prefix is the lower end of the path
        np.testing.assert_array_equal(smaller.nodes, inst.nodes[:4])

    def test_level_keeps_left_half(self, tree):
        inst = LTemplate(9).instance_at(tree, 0)
        smaller = degrade_instance(inst)
        assert smaller.kind == "level"
        assert smaller.size == 5
        np.testing.assert_array_equal(smaller.nodes, inst.nodes[:5])

    def test_subtree_drops_last_level(self, tree):
        inst = STemplate(15).instance_at(tree, 0)
        smaller = degrade_instance(inst)
        assert smaller.kind == "subtree"
        assert smaller.size == 7  # 2**4 - 1  ->  2**3 - 1
        # BFS prefix of a complete subtree is the top subtree
        np.testing.assert_array_equal(smaller.nodes, inst.nodes[:7])

    def test_degraded_subtree_is_valid_instance(self, tree):
        inst = STemplate(15).instance_at(tree, 3)
        smaller = degrade_instance(inst)
        family = STemplate(7)
        valid = {i.node_set() for i in family.instances(tree)}
        assert smaller.node_set() in valid

    def test_composite_halves_components(self, tree):
        comp = make_composite(
            [STemplate(3).instance_at(tree, 0), LTemplate(4).instance_at(tree, 40)]
        )
        smaller = degrade_instance(comp)
        assert smaller.num_components == 1
        assert smaller.components[0].kind == "subtree"

    def test_single_component_composite_degrades_inner(self, tree):
        comp = make_composite([LTemplate(8).instance_at(tree, 40)])
        smaller = degrade_instance(comp)
        assert smaller.num_components == 1
        assert smaller.components[0].size == 4

    def test_single_node_cannot_degrade(self, tree):
        assert degrade_instance(PTemplate(1).instance_at(tree, 0)) is None

    def test_unknown_kind_cannot_degrade(self):
        inst = TemplateInstance(kind="trace", nodes=np.array([1, 2, 3]))
        assert degrade_instance(inst) is None

    def test_composite_with_one_nondegradable_component_gives_none(self, tree):
        """A composite whose only remaining component is a single node has
        nowhere left to shrink; the ladder must see None, not a crash."""
        comp = make_composite([PTemplate(1).instance_at(tree, 0)])
        assert degrade_instance(comp) is None

    def test_subtree_chain_preserves_complete_sizes(self, tree):
        """Every degradation step keeps the subtree complete: sizes walk
        down the 2**x - 1 ladder until a single node, then None."""
        inst = STemplate(15).instance_at(tree, 0)
        sizes = []
        while inst is not None:
            sizes.append(inst.size)
            assert (inst.size + 1) & inst.size == 0  # size is 2**x - 1
            inst = degrade_instance(inst)
        assert sizes == [15, 7, 3, 1]


class TestAdmissionQueue:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionQueue(0)
        with pytest.raises(ValueError):
            AdmissionQueue(10, policy="nope")

    def test_admit_within_capacity(self, tree):
        q = AdmissionQueue(20, policy="block")
        req = _request(STemplate(7).instance_at(tree, 0))
        assert q.offer(req, cycle=3) == "admitted"
        assert req.admit_cycle == 3
        assert q.pending_items == 7

    def test_block_parks_then_admits(self, tree):
        q = AdmissionQueue(10, policy="block")
        first = _request(STemplate(7).instance_at(tree, 0), request_id=0)
        second = _request(STemplate(7).instance_at(tree, 1), request_id=1)
        assert q.offer(first, 0) == "admitted"
        assert q.offer(second, 0) == "blocked"
        assert len(q.waiting) == 1
        q.remove([first])
        admitted = q.admit_waiting(cycle=9)
        assert admitted == [second]
        assert second.admit_cycle == 9
        assert q.drained is False

    def test_shed_rejects_when_full(self, tree):
        q = AdmissionQueue(10, policy="shed")
        assert q.offer(_request(STemplate(7).instance_at(tree, 0)), 0) == "admitted"
        assert q.offer(_request(STemplate(7).instance_at(tree, 1)), 0) == "shed"
        assert len(q) == 1

    def test_oversized_request_is_shed_not_blocked(self, tree):
        q = AdmissionQueue(5, policy="block")
        assert q.offer(_request(STemplate(7).instance_at(tree, 0)), 0) == "shed"
        assert not q.waiting

    def test_degrade_shrinks_to_fit(self, tree):
        q = AdmissionQueue(10, policy="degrade")
        big = _request(STemplate(15).instance_at(tree, 0))
        assert q.offer(big, 0) == "admitted"
        assert big.instance.size == 7
        assert big.degraded == 1

    def test_degrade_sheds_when_nothing_fits(self, tree):
        q = AdmissionQueue(8, policy="degrade")
        assert q.offer(_request(STemplate(7).instance_at(tree, 0)), 0) == "admitted"
        # queue now holds 7 of 8 items; even one node fits, path of 1 admits
        tiny = _request(PTemplate(2).instance_at(tree, 0), request_id=1)
        assert q.offer(tiny, 0) == "admitted"
        assert tiny.instance.size == 1
        full = _request(PTemplate(2).instance_at(tree, 5), request_id=2)
        assert q.offer(full, 0) == "shed"
