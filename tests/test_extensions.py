"""Tests for the extension features: facade, general M, policies, viz, CLI."""

import pytest

import repro
from repro.analysis import family_cost, load_report, render_coloring, render_module_histogram
from repro.bench.ablations import ABLATIONS
from repro.bench.experiments import run_experiment
from repro.core import ColorMapping, LabelTreeMapping
from repro.templates import LTemplate, PTemplate
from repro.trees import CompleteBinaryTree


class TestFacade:
    def test_public_exports_work(self):
        tree = repro.CompleteBinaryTree(8)
        mapping = repro.ColorMapping(tree, N=5, k=2)
        assert repro.family_cost(mapping, repro.PTemplate(5)) == 0
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestGeneralM:
    def test_power_of_two_minus_one_unchanged(self, tree12):
        mapping = ColorMapping.for_modules(tree12, 15)
        assert mapping.num_modules == 15
        assert mapping.colors_used() <= 15

    def test_intermediate_M_leaves_spare_modules(self, tree12):
        mapping = ColorMapping.for_modules(tree12, 20)
        assert mapping.num_modules == 20
        assert mapping.colors_used() <= 15  # largest 2**m - 1 <= 20
        mapping.validate()

    def test_conflicts_within_constant_factor(self, tree12):
        """The paper's general-case remark, in miniature."""
        exact = ColorMapping.for_modules(tree12, 15)
        general = ColorMapping.for_modules(tree12, 20)
        for D in (20, 40):
            got = family_cost(general, LTemplate(D))
            reference = family_cost(exact, LTemplate(D))
            assert got <= 2 * reference + 2

    def test_too_small_M(self, tree12):
        with pytest.raises(ValueError):
            ColorMapping.for_modules(tree12, 2)


class TestLabelTreePolicies:
    def test_default_policies(self, tree12):
        lt = LabelTreeMapping(tree12, 31)
        assert lt._macro_policy == "diagonal" and lt._rotate_policy == "unit"

    def test_layer_macro_unbalances_load(self):
        tree = CompleteBinaryTree(14)
        good = load_report(LabelTreeMapping(tree, 31)).ratio
        bad = load_report(LabelTreeMapping(tree, 31, macro_policy="layer")).ratio
        assert good < 1.25
        assert bad > 2 * good

    def test_no_rotation_hurts_levels(self, tree12):
        default = LabelTreeMapping(tree12, 31)
        ablated = LabelTreeMapping(tree12, 31, rotate_policy="none")
        assert family_cost(ablated, LTemplate(62)) > family_cost(default, LTemplate(62))

    def test_policies_keep_addressing_consistent(self, tree12, rng):
        for macro in ("diagonal", "layer"):
            for rotate in ("unit", "none"):
                lt = LabelTreeMapping(tree12, 31, macro_policy=macro, rotate_policy=rotate)
                arr = lt.color_array()
                for v in rng.integers(0, tree12.num_nodes, 60):
                    assert lt.module_of(int(v)) == arr[int(v)]

    def test_unknown_policy_rejected(self, tree12):
        with pytest.raises(ValueError):
            LabelTreeMapping(tree12, 31, macro_policy="bogus")
        with pytest.raises(ValueError):
            LabelTreeMapping(tree12, 31, rotate_policy="bogus")


class TestViz:
    def test_render_coloring_shows_top_levels(self, tree8):
        mapping = ColorMapping(tree8, N=5, k=2)
        art = render_coloring(mapping, max_levels=4)
        lines = art.splitlines()
        assert len(lines) == 4
        assert lines[0].strip() == "0"  # root is module 0
        assert set(lines[1].split()) == {"1", "2"}

    def test_render_histogram(self, tree8):
        mapping = ColorMapping(tree8, N=5, k=2)
        art = render_module_histogram(mapping, width=20)
        assert len(art.splitlines()) == mapping.num_modules
        assert "#" in art


class TestAblationRegistry:
    def test_all_ablations_run_quick(self):
        for exp_id in ABLATIONS:
            result = run_experiment(exp_id, "quick")
            assert result.holds, f"{exp_id}: {result}"

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("E99")


class TestCli:
    def test_list(self, capsys):
        from repro.bench.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "A6" in out

    def test_run_single_quick(self, capsys, tmp_path):
        from repro.bench.cli import main

        md = tmp_path / "out.md"
        assert main(["run", "E3", "--quick", "--markdown", str(md)]) == 0
        assert "claim holds: YES" in capsys.readouterr().out
        assert md.read_text().startswith("# Regenerated results")
