"""Unit tests for the composite C-template."""

import numpy as np
import pytest

from repro.templates import (
    CompositeSampler,
    TemplateInstance,
    make_composite,
)
from repro.trees import CompleteBinaryTree


def _inst(kind, nodes):
    return TemplateInstance(kind=kind, nodes=np.array(nodes, dtype=np.int64))


class TestMakeComposite:
    def test_valid_composite(self):
        comp = make_composite([_inst("level", [3, 4]), _inst("path", [11, 5, 2])])
        assert comp.kind == "composite"
        assert comp.num_components == 2
        assert comp.size == 5
        assert comp.component_sizes() == (2, 3)

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            make_composite([_inst("level", [3, 4]), _inst("path", [4, 1, 0])])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            make_composite([])

    def test_nesting_rejected(self):
        comp = make_composite([_inst("level", [3, 4])])
        with pytest.raises(ValueError):
            make_composite([comp])


class TestCompositeSampler:
    def test_sample_has_exact_component_count(self, tree12, rng):
        sampler = CompositeSampler(tree12)
        for c in (1, 3, 7):
            comp = sampler.sample(c, target_size=120, rng=rng)
            assert comp.num_components == c

    def test_sample_components_are_disjoint(self, tree12, rng):
        sampler = CompositeSampler(tree12)
        comp = sampler.sample(6, target_size=200, rng=rng)
        seen = set()
        for part in comp.components:
            assert seen.isdisjoint(part.node_set())
            seen |= part.node_set()
        assert len(seen) == comp.size

    def test_sample_size_tracks_target(self, tree12, rng):
        sampler = CompositeSampler(tree12)
        for target in (50, 150, 400):
            comp = sampler.sample(4, target_size=target, rng=rng)
            assert target / 3 <= comp.size <= 2 * target

    def test_component_kinds_respect_filter(self, tree12, rng):
        sampler = CompositeSampler(tree12, kinds=("path",))
        comp = sampler.sample(3, target_size=30, rng=rng)
        assert {part.kind for part in comp.components} == {"path"}

    def test_subtree_sizes_are_complete(self, tree12, rng):
        sampler = CompositeSampler(tree12, kinds=("subtree",))
        comp = sampler.sample(3, target_size=40, rng=rng)
        for part in comp.components:
            assert (part.size + 1) & part.size == 0  # 2**x - 1

    def test_invalid_args(self, tree12, rng):
        sampler = CompositeSampler(tree12)
        with pytest.raises(ValueError):
            sampler.sample(0, target_size=10, rng=rng)
        with pytest.raises(ValueError):
            sampler.sample(5, target_size=3, rng=rng)
        with pytest.raises(ValueError):
            sampler.sample(2, target_size=tree12.num_nodes, rng=rng)
        with pytest.raises(ValueError):
            CompositeSampler(tree12, kinds=("bogus",))

    def test_deterministic_under_seed(self, tree12):
        sampler = CompositeSampler(tree12)
        a = sampler.sample(4, 100, np.random.default_rng(7))
        b = sampler.sample(4, 100, np.random.default_rng(7))
        assert a.node_set() == b.node_set()


class TestSamplerDiagnostics:
    """The rejection-sampling failure path must say what it tried."""

    def _impossible(self, **kw):
        # every path(5) in a 5-level tree contains the root, so a second
        # disjoint path component can never be placed
        tree = CompleteBinaryTree(5)
        return CompositeSampler(tree, kinds=("path",), **kw)

    def test_error_reports_kinds_and_sizes(self, rng):
        sampler = self._impossible(max_tries=4)
        with pytest.raises(RuntimeError) as err:
            sampler.sample(2, target_size=10, rng=rng)
        message = str(err.value)
        assert "4 tries per kind" in message
        assert "path(5)" in message
        assert "budget=5" in message
        assert "used=5 of 31 nodes" in message

    def test_per_call_max_tries_overrides_default(self, rng):
        sampler = self._impossible(max_tries=2000)
        with pytest.raises(RuntimeError, match="1 tries per kind"):
            sampler.sample(2, target_size=10, rng=rng, max_tries=1)
        # the sampler-wide default is untouched
        assert sampler.max_tries == 2000

    def test_per_call_max_tries_can_rescue_dense_draws(self, tree12):
        """A tight per-call budget fails where a larger one succeeds."""
        tree = CompleteBinaryTree(6)
        sampler = CompositeSampler(tree, kinds=("subtree",))
        rescued = 0
        for seed in range(20):
            rng = np.random.default_rng(seed)
            try:
                sampler.sample(6, target_size=30, rng=rng, max_tries=1)
            except RuntimeError:
                rng = np.random.default_rng(seed)
                try:
                    comp = sampler.sample(6, target_size=30, rng=rng)
                except RuntimeError:
                    continue  # genuinely too dense for this seed
                assert comp.num_components == 6
                rescued += 1
        assert rescued > 0
