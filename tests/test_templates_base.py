"""Unit tests for TemplateInstance and the family protocol."""

import numpy as np
import pytest

from repro.templates import LTemplate, PTemplate, STemplate, TemplateInstance


class TestTemplateInstance:
    def test_basic_properties(self):
        inst = TemplateInstance(kind="level", nodes=np.array([3, 4, 5]), anchor=3)
        assert inst.size == len(inst) == 3
        assert 4 in inst and 7 not in inst
        assert inst.node_set() == frozenset({3, 4, 5})

    def test_nodes_are_immutable(self):
        inst = TemplateInstance(kind="level", nodes=np.array([3, 4, 5]))
        with pytest.raises(ValueError):
            inst.nodes[0] = 9

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            TemplateInstance(kind="path", nodes=np.array([1, 2, 1]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TemplateInstance(kind="path", nodes=np.array([], dtype=np.int64))

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            TemplateInstance(kind="path", nodes=np.array([[1, 2]]))

    def test_equality_is_set_based(self):
        a = TemplateInstance(kind="level", nodes=np.array([3, 4, 5]))
        b = TemplateInstance(kind="level", nodes=np.array([5, 4, 3]))
        c = TemplateInstance(kind="path", nodes=np.array([3, 4, 5]))
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_disjoint_from(self):
        a = TemplateInstance(kind="level", nodes=np.array([3, 4]))
        b = TemplateInstance(kind="level", nodes=np.array([5, 6]))
        c = TemplateInstance(kind="level", nodes=np.array([4, 5]))
        assert a.disjoint_from(b)
        assert not a.disjoint_from(c)


class TestFamilyProtocol:
    @pytest.mark.parametrize(
        "family", [STemplate(7), LTemplate(5), PTemplate(4)], ids=["S", "L", "P"]
    )
    def test_matrix_rows_match_instance_iteration(self, family, tree8):
        matrix = family.instance_matrix(tree8)
        insts = list(family.instances(tree8))
        assert matrix.shape == (len(insts), family.size)
        for row, inst in zip(matrix, insts):
            assert set(int(v) for v in row) == inst.node_set()

    @pytest.mark.parametrize(
        "family", [STemplate(7), LTemplate(5), PTemplate(4)], ids=["S", "L", "P"]
    )
    def test_count_matches_enumeration(self, family, tree8):
        assert family.count(tree8) == sum(1 for _ in family.instances(tree8))

    @pytest.mark.parametrize(
        "family", [STemplate(7), LTemplate(5), PTemplate(4)], ids=["S", "L", "P"]
    )
    def test_instance_at_matches_iteration(self, family, tree8):
        insts = list(family.instances(tree8))
        for idx in (0, len(insts) // 2, len(insts) - 1):
            assert family.instance_at(tree8, idx) == insts[idx]

    @pytest.mark.parametrize(
        "family", [STemplate(7), LTemplate(5), PTemplate(4)], ids=["S", "L", "P"]
    )
    def test_instance_at_out_of_range(self, family, tree8):
        with pytest.raises(IndexError):
            family.instance_at(tree8, family.count(tree8))

    @pytest.mark.parametrize(
        "family", [STemplate(7), LTemplate(5), PTemplate(4)], ids=["S", "L", "P"]
    )
    def test_sample_returns_valid_instance(self, family, tree8, rng):
        for _ in range(20):
            inst = family.sample(tree8, rng)
            assert inst.size == family.size
            assert all(int(v) in tree8 for v in inst.nodes)

    def test_all_instance_nodes_in_tree(self, tree8):
        for family in (STemplate(7), LTemplate(6), PTemplate(8)):
            matrix = family.instance_matrix(tree8)
            assert matrix.min() >= 0
            assert matrix.max() < tree8.num_nodes
