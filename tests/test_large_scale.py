"""Large-scale sanity: the guarantees and kernels at million-node sizes.

These runs guard the vectorized code paths against size-dependent bugs
(index overflow, chunking boundaries, level-alignment) that small trees
cannot expose.  Kept to a few seconds total.
"""

import pytest

from repro.analysis import family_cost, load_report
from repro.core import (
    ChaseTable,
    ColorMapping,
    LabelTreeMapping,
    resolve_color,
    resolve_color_with_table,
)
from repro.templates import LTemplate, PTemplate, STemplate
from repro.trees import CompleteBinaryTree


@pytest.fixture(scope="module")
def tree20():
    return CompleteBinaryTree(20)  # ~1M nodes


@pytest.fixture(scope="module")
def color20(tree20):
    mapping = ColorMapping(tree20, N=6, k=2)
    mapping.color_array()
    return mapping


class TestMillionNodeColor:
    def test_cf_on_paths_exhaustive(self, color20):
        assert family_cost(color20, PTemplate(6)) == 0

    def test_cf_on_subtrees_exhaustive(self, color20):
        assert family_cost(color20, STemplate(3)) == 0

    def test_level_windows_lemma2_extension(self, color20):
        assert family_cost(color20, LTemplate(3)) <= 1

    def test_palette_exact(self, color20):
        assert color20.colors_used() == color20.num_modules == 7

    def test_resolver_spot_checks(self, color20, rng):
        arr = color20.color_array()
        table = ChaseTable.build(6, 2)
        for v in rng.integers(0, color20.tree.num_nodes, 150):
            v = int(v)
            assert resolve_color(v, 6, 2) == arr[v]
            assert resolve_color_with_table(v, table)[0] == arr[v]


class TestMillionNodeLabelTree:
    def test_load_ratio_within_group_size_bound(self, tree20):
        """Theorem 7's 1 + o(1) is o(1) *in M*: the residual imbalance is the
        unequal-group-size artifact 1/floor(M/p), and group sizes grow like
        sqrt(M log M).  At fixed M the ratio plateaus at that value."""
        for M in (15, 31):
            mapping = LabelTreeMapping(tree20, M)
            bound = 1 + 1 / (M // mapping.p) + 0.02
            assert load_report(mapping).ratio <= bound

    def test_load_residual_shrinks_with_M(self):
        """The o(1)-in-M claim, measured: bigger M, smaller residual bound."""
        tree = CompleteBinaryTree(18)
        residuals = []
        for M in (31, 255):
            mapping = LabelTreeMapping(tree, M)
            residuals.append(load_report(mapping).ratio - 1)
        assert residuals[1] < residuals[0]

    def test_wide_level_windows(self, tree20):
        mapping = LabelTreeMapping(tree20, 31)
        from repro.analysis.bounds import labeltree_elementary_scale

        cost = family_cost(mapping, LTemplate(8 * 31))
        assert cost <= 4 * labeltree_elementary_scale(8 * 31, 31) + 2

    def test_addressing_agrees_at_depth(self, tree20, rng):
        mapping = LabelTreeMapping(tree20, 31)
        arr = mapping.color_array()
        deep = rng.integers(tree20.num_nodes // 2, tree20.num_nodes, 100)
        for v in deep:
            v = int(v)
            assert mapping.module_of(v) == arr[v]
            assert mapping.module_of_no_table(v)[0] == arr[v]
