"""Unit tests for bounds, load metrics and verification reports."""

import math

import pytest

from repro.analysis import (
    check_conflict_free,
    check_family_bound,
    conflict_histogram,
    load_report,
    worst_instances,
)
from repro.analysis import bounds
from repro.core import ColorMapping, ModuloMapping
from repro.templates import LTemplate, PTemplate, STemplate


class TestBounds:
    def test_trivial_lower_bound(self):
        assert bounds.trivial_lower_bound(10, 5) == 1
        assert bounds.trivial_lower_bound(11, 5) == 2
        assert bounds.trivial_lower_bound(5, 5) == 0

    def test_cf_optimal_modules(self):
        assert bounds.cf_optimal_modules(6, 2) == 7
        assert bounds.cf_optimal_modules(4, 3) == 8

    def test_exact_bounds(self):
        assert bounds.thm1_bound() == 0
        assert bounds.lemma2_bound() == 1
        assert bounds.thm4_bound() == 1
        assert bounds.lemma3_path_bound(21, 7) == 5
        assert bounds.lemma4_level_bound(21, 7) == 12
        assert bounds.lemma5_subtree_bound(15, 7) == 4 * 3 - 1
        assert bounds.thm6_composite_bound(70, 7, 4) == 44.0

    def test_labeltree_scales(self):
        assert bounds.labeltree_elementary_scale(63, 63) == pytest.approx(
            63 / math.sqrt(63 * math.log2(63))
        )
        assert bounds.labeltree_composite_scale(63, 63, 5) == pytest.approx(
            bounds.labeltree_elementary_scale(63, 63) + 5
        )

    def test_bounds_weaken_with_more_modules(self):
        assert bounds.lemma3_path_bound(64, 31) <= bounds.lemma3_path_bound(64, 7)


class TestLoadReport:
    def test_uniform_mapping(self, tree8):
        # 255 nodes over 5 modules: perfectly even 51 each
        report = load_report(ModuloMapping(tree8, 5))
        assert report.max_load == report.min_load == 51
        assert report.ratio == 1.0
        assert report.imbalance == 0.0

    def test_empty_module_gives_inf_ratio(self, tree8):
        report = load_report(ModuloMapping(tree8, 300))
        assert math.isinf(report.ratio)

    def test_loads_sum(self, tree8):
        report = load_report(ModuloMapping(tree8, 7))
        assert report.loads.sum() == tree8.num_nodes


class TestVerification:
    def test_bound_check_holds(self, tree12):
        mapping = ColorMapping(tree12, N=5, k=2)
        check = check_family_bound(mapping, STemplate(3), 0)
        assert check.holds
        assert check.measured == 0
        assert check.instances_checked == STemplate(3).count(tree12)

    def test_bound_check_violated(self, tree8):
        mapping = ModuloMapping(tree8, 5)
        check = check_family_bound(mapping, PTemplate(6), 0)
        assert not check.holds
        assert "VIOLATED" in str(check)

    def test_check_conflict_free_multiple_families(self, tree12):
        mapping = ColorMapping(tree12, N=5, k=2)
        checks = check_conflict_free(mapping, [STemplate(3), PTemplate(5)])
        assert len(checks) == 2
        assert all(c.holds for c in checks)

    def test_worst_instances_sorted(self, tree8):
        mapping = ModuloMapping(tree8, 5)
        worst = worst_instances(mapping, PTemplate(6), top=4)
        scores = [s for s, _ in worst]
        assert scores == sorted(scores, reverse=True)
        assert len(worst) == 4

    def test_conflict_histogram_matches_distribution(self, tree8):
        mapping = ModuloMapping(tree8, 5)
        hist = conflict_histogram(mapping, LTemplate(5))
        assert hist.sum() == LTemplate(5).count(tree8)
        assert hist[0] == LTemplate(5).count(tree8)  # modulo is CF on L(M)
