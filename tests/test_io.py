"""Unit tests for mapping persistence."""

import numpy as np
import pytest

from repro.analysis import family_cost
from repro.core import ColorMapping, LabelTreeMapping
from repro.io import FrozenMapping, load_mapping, save_mapping
from repro.templates import PTemplate, STemplate


class TestRoundTrip:
    def test_color_mapping_round_trips(self, tmp_path, tree12):
        mapping = ColorMapping(tree12, N=6, k=2)
        path = save_mapping(mapping, tmp_path / "color.npz", params={"N": 6, "k": 2})
        restored = load_mapping(path)
        assert np.array_equal(restored.color_array(), mapping.color_array())
        assert restored.num_modules == mapping.num_modules
        assert restored.tree.num_levels == 12
        assert restored.source == "ColorMapping"
        assert restored.params == {"N": 6, "k": 2}

    def test_restored_mapping_keeps_guarantees(self, tmp_path, tree12):
        mapping = ColorMapping(tree12, N=6, k=2)
        restored = load_mapping(save_mapping(mapping, tmp_path / "m.npz"))
        assert family_cost(restored, STemplate(3)) == 0
        assert family_cost(restored, PTemplate(6)) == 0

    def test_labeltree_round_trips(self, tmp_path, tree12):
        mapping = LabelTreeMapping(tree12, 31)
        restored = load_mapping(save_mapping(mapping, tmp_path / "lt.npz"))
        assert np.array_equal(restored.color_array(), mapping.color_array())

    def test_suffix_added(self, tmp_path, tree8):
        mapping = ColorMapping(tree8, N=4, k=2)
        path = save_mapping(mapping, tmp_path / "noext")
        assert path.suffix == ".npz"
        assert load_mapping(path).num_modules == mapping.num_modules

    def test_module_of_matches(self, tmp_path, tree8):
        mapping = ColorMapping(tree8, N=4, k=2)
        restored = load_mapping(save_mapping(mapping, tmp_path / "m.npz"))
        for v in range(0, tree8.num_nodes, 13):
            assert restored.module_of(v) == mapping.module_of(v)


class TestValidation:
    def test_rejects_bad_shape(self, tree8):
        with pytest.raises(ValueError):
            FrozenMapping(tree8, 5, np.zeros(10, dtype=np.int64))

    def test_rejects_out_of_range_colors(self, tree8):
        colors = np.zeros(tree8.num_nodes, dtype=np.int64)
        colors[0] = 99
        with pytest.raises(ValueError):
            FrozenMapping(tree8, 5, colors)

    def test_rejects_non_mapping_file(self, tmp_path):
        bogus = tmp_path / "bogus.npz"
        np.savez(bogus, stuff=np.arange(3))
        with pytest.raises(ValueError):
            load_mapping(bogus)

    def test_rejects_future_format(self, tmp_path, tree8):
        import json

        path = tmp_path / "future.npz"
        meta = {"format_version": 99, "num_levels": 8, "num_modules": 5}
        np.savez(
            path,
            colors=np.zeros(tree8.num_nodes, dtype=np.int64),
            meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        )
        with pytest.raises(ValueError):
            load_mapping(path)


class TestFaultSpecs:
    def test_fault_model_round_trips(self, tmp_path):
        from repro.io import load_faults, save_faults
        from repro.memory import FaultModel

        model = FaultModel(slow={3: 2}, failed={5})
        path = save_faults(model, tmp_path / "faults.json")
        restored = load_faults(path)
        assert isinstance(restored, FaultModel)
        assert restored.slow == model.slow
        assert restored.failed == model.failed

    def test_fault_schedule_round_trips(self, tmp_path):
        from repro.io import load_faults, save_faults
        from repro.memory import FaultSchedule

        sched = FaultSchedule.parse(
            "fail=3@50:400,slow=7:4@100:300,drop=0.02@0:600,seed=9"
        )
        path = save_faults(sched, tmp_path / "sched.json")
        restored = load_faults(path)
        assert isinstance(restored, FaultSchedule)
        assert restored.seed == 9
        assert restored.to_json() == sched.to_json()

    def test_rejects_non_fault_files(self, tmp_path):
        from repro.io import load_faults

        bogus = tmp_path / "bogus.json"
        bogus.write_text("not json at all {")
        with pytest.raises(ValueError):
            load_faults(bogus)
        wrong = tmp_path / "wrong.json"
        wrong.write_text('{"type": "mapping"}')
        with pytest.raises(ValueError):
            load_faults(wrong)
        alist = tmp_path / "list.json"
        alist.write_text("[1, 2]")
        with pytest.raises(ValueError):
            load_faults(alist)
