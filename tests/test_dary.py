"""Tests for the d-ary extension."""

import numpy as np
import pytest

from repro.analysis import chromatic_number, conflict_graph
from repro.analysis.conflicts import instance_conflicts
from repro.core import color_array
from repro.dary import (
    DaryColorMapping,
    DaryTree,
    dary_color_array,
    dary_level_instances,
    dary_num_colors,
    dary_path_instances,
    dary_resolve_color,
    dary_subtree_instances,
)
from repro.dary import coords as dc


class TestDaryCoords:
    def test_level_start(self):
        assert [dc.level_start(j, 3) for j in range(4)] == [0, 1, 4, 13]

    def test_coord_round_trip(self):
        for d in (2, 3, 4, 5):
            for j in range(4):
                for i in range(d**j):
                    node = dc.coord_to_id(i, j, d)
                    assert dc.id_to_coord(node, d) == (i, j)

    def test_parent_child_inverse(self):
        for d in (2, 3, 4):
            for node in range(1, 100):
                for which in range(d):
                    assert dc.parent(dc.child(node, which, d), d) == node

    def test_siblings(self):
        assert dc.siblings(1, 3) == [2, 3]
        assert dc.siblings(2, 3) == [1, 3]
        assert sorted(dc.siblings(5, 2) + [5]) == [5, 6]

    def test_ancestor_matches_repeated_parent(self):
        d = 3
        node = dc.coord_to_id(17, 3, d)
        walk = node
        for t in range(4):
            assert dc.ancestor(node, t, d) == walk
            if walk:
                walk = dc.parent(walk, d)

    def test_path_up(self):
        assert dc.path_up(13, 3, 3) == [13, 4, 1]

    def test_subtree_size(self):
        assert dc.subtree_size(3, 3) == 13
        assert dc.subtree_size(2, 4) == 5

    def test_bfs_node_of_subtree(self):
        d = 3
        nodes = dc.subtree_nodes_list(2, 3, d)
        for rank, node in enumerate(nodes):
            assert dc.bfs_node_of_subtree(2, rank, d) == node

    def test_binary_agrees_with_binary_module(self):
        from repro.trees import coords as bc

        for node in range(1, 200):
            assert dc.parent(node, 2) == bc.parent(node)
            assert dc.level_of(node, 2) == bc.level_of(node)

    def test_errors(self):
        with pytest.raises(ValueError):
            dc.parent(0, 3)
        with pytest.raises(ValueError):
            dc.child(0, 3, 3)
        with pytest.raises(ValueError):
            dc.level_start(0, 1)


class TestDaryTree:
    def test_geometry(self):
        t = DaryTree(3, 4)
        assert t.num_nodes == 40
        assert t.level_size(3) == 27
        assert t.level_start(2) == 4

    def test_membership(self):
        t = DaryTree(3, 3)
        assert 12 in t and 13 not in t
        with pytest.raises(ValueError):
            t.check_node(13)

    def test_template_enumeration_counts(self):
        t = DaryTree(3, 4)
        assert sum(1 for _ in dary_subtree_instances(t, 2)) == 13  # levels 0..2
        assert sum(1 for _ in dary_path_instances(t, 2)) == t.num_nodes - 1
        assert sum(1 for _ in dary_level_instances(t, 3)) == 1 + 7 + 25

    def test_invalid(self):
        with pytest.raises(ValueError):
            DaryTree(1, 3)
        with pytest.raises(ValueError):
            DaryTree(3, 0)


class TestDaryColor:
    @pytest.mark.parametrize(
        "d,k,N,H",
        [(2, 2, 4, 8), (3, 1, 3, 5), (3, 2, 4, 6), (3, 3, 4, 5), (4, 2, 3, 5), (5, 2, 3, 4)],
    )
    def test_cf_on_subtrees_and_paths(self, d, k, N, H):
        tree = DaryTree(d, H)
        mapping = DaryColorMapping(tree, N=N, k=k)
        colors = mapping.color_array()
        for inst in dary_subtree_instances(tree, k):
            assert instance_conflicts(colors, inst) == 0
        for inst in dary_path_instances(tree, N):
            assert instance_conflicts(colors, inst) == 0
        assert mapping.colors_used() <= mapping.num_modules

    def test_num_colors_formula(self):
        assert dary_num_colors(4, 2, 3) == 4 + 4 - 2
        assert dary_num_colors(5, 2, 4) == 5 + 5 - 2

    @pytest.mark.parametrize(
        "d,N,k,H", [(2, 5, 2, 10), (3, 4, 2, 7), (3, 4, 3, 6), (4, 3, 2, 5), (5, 3, 2, 4)]
    )
    def test_vectorized_matches_reference(self, d, N, k, H):
        from repro.dary.color import dary_color_array_reference

        tree = DaryTree(d, H)
        assert np.array_equal(
            dary_color_array(tree, N, k), dary_color_array_reference(tree, N, k)
        )

    def test_d2_bit_identical_to_binary(self):
        tree = DaryTree(2, 11)
        a = dary_color_array(tree, N=5, k=2)
        assert np.array_equal(a, color_array(11, 5, 2))

    def test_resolver_matches_array(self):
        tree = DaryTree(3, 6)
        mapping = DaryColorMapping(tree, N=4, k=2)
        arr = mapping.color_array()
        for v in range(tree.num_nodes):
            assert dary_resolve_color(v, 4, 2, 3) == arr[v]

    def test_level_windows_cheap(self):
        tree = DaryTree(3, 6)
        mapping = DaryColorMapping(tree, N=4, k=2)
        colors = mapping.color_array()
        K = mapping.K
        worst = max(
            instance_conflicts(colors, inst) for inst in dary_level_instances(tree, K)
        )
        assert worst <= 2  # the d-ary analogue of Lemma 2 (constant, small)

    def test_palette_is_optimal_small_cases(self):
        """Theorem 2's argument survives arity: chromatic number of the
        S(K)+P(N) conflict graph equals N + K - k for d = 3 too."""
        d, k, N = 3, 2, 3
        tree = DaryTree(d, N)
        instances = list(dary_subtree_instances(tree, k)) + list(
            dary_path_instances(tree, N)
        )
        adj = conflict_graph(instances, tree.num_nodes)
        assert chromatic_number(adj) == dary_num_colors(N, k, d)

    def test_invalid_params(self):
        tree = DaryTree(3, 6)
        with pytest.raises(ValueError):
            DaryColorMapping(tree, N=1, k=2)
        with pytest.raises(ValueError):
            dary_color_array(DaryTree(3, 6), N=2, k=2)  # N == k, tall tree