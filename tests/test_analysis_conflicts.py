"""Unit tests for the conflict cost functions (paper Section 2)."""

import numpy as np
import pytest

from repro.analysis import (
    family_cost,
    family_cost_distribution,
    instance_conflicts,
    mapping_cost,
    matrix_conflicts,
    sampled_family_cost,
)
from repro.core import ColorMapping, ModuloMapping
from repro.templates import LTemplate, PTemplate, STemplate, TemplateInstance
from repro.trees import CompleteBinaryTree


class TestInstanceConflicts:
    def test_rainbow_instance_is_zero(self):
        colors = np.array([0, 1, 2, 3, 4])
        inst = TemplateInstance(kind="level", nodes=np.array([0, 1, 2]))
        assert instance_conflicts(colors, inst) == 0

    def test_definition_max_multiplicity_minus_one(self):
        colors = np.array([1, 1, 1, 2, 2, 3, 4])
        inst = TemplateInstance(kind="level", nodes=np.arange(7))
        assert instance_conflicts(colors, inst) == 2  # color 1 used thrice

    def test_accepts_raw_arrays(self):
        colors = np.array([0, 0, 1])
        assert instance_conflicts(colors, np.array([0, 1])) == 1


class TestMatrixConflicts:
    def test_matches_per_instance(self, tree8, rng):
        mapping = ModuloMapping(tree8, 5)
        fam = PTemplate(6)
        matrix = fam.instance_matrix(tree8)
        vec = matrix_conflicts(mapping.color_array(), matrix, 5)
        for row, got in zip(matrix, vec):
            assert got == instance_conflicts(mapping.color_array(), row)

    def test_chunking_boundary(self, monkeypatch):
        """Force tiny chunks and check identical results."""
        import repro.analysis.conflicts as mod

        tree = CompleteBinaryTree(9)
        mapping = ModuloMapping(tree, 7)
        matrix = PTemplate(5).instance_matrix(tree)
        full = matrix_conflicts(mapping.color_array(), matrix, 7)
        monkeypatch.setattr(mod, "_CHUNK_CELL_BUDGET", 64)
        chunked = matrix_conflicts(mapping.color_array(), matrix, 7)
        assert np.array_equal(full, chunked)

    def test_empty_matrix(self):
        out = matrix_conflicts(np.arange(3), np.empty((0, 4), dtype=np.int64), 3)
        assert out.size == 0

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            matrix_conflicts(np.arange(3), np.arange(3), 3)


class TestFamilyCost:
    def test_known_zero(self, tree12):
        mapping = ColorMapping(tree12, N=5, k=2)
        assert family_cost(mapping, STemplate(3)) == 0

    def test_raises_on_empty_family(self, tree8):
        mapping = ModuloMapping(tree8, 5)
        with pytest.raises(ValueError):
            family_cost(mapping, PTemplate(20))

    def test_distribution_sums_to_count(self, tree8):
        mapping = ModuloMapping(tree8, 5)
        fam = PTemplate(6)
        dist = family_cost_distribution(mapping, fam)
        assert dist.sum() == fam.count(tree8)

    def test_mapping_cost_is_max_over_families(self, tree8):
        mapping = ModuloMapping(tree8, 5)
        fams = [LTemplate(5), PTemplate(5)]
        assert mapping_cost(mapping, fams) == max(
            family_cost(mapping, f) for f in fams
        )

    def test_mapping_cost_requires_families(self, tree8):
        with pytest.raises(ValueError):
            mapping_cost(ModuloMapping(tree8, 5), [])

    def test_sampled_cost_lower_bounds_exhaustive(self, tree8, rng):
        mapping = ModuloMapping(tree8, 5)
        fam = PTemplate(6)
        sampled = sampled_family_cost(mapping, fam, samples=60, rng=rng)
        assert sampled <= family_cost(mapping, fam)
