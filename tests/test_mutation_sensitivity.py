"""Mutation tests: the verification machinery must *detect* broken colorings.

A verifier that always returns 0 would pass every conflict-freeness test in
this suite.  These tests corrupt known-good colorings in controlled ways and
assert the analysis stack flags them — proving the green results elsewhere
are earned.
"""

import numpy as np
import pytest

from repro.analysis import family_cost, instance_conflicts, matrix_conflicts
from repro.core import ColorMapping
from repro.io import FrozenMapping
from repro.templates import LTemplate, PTemplate, STemplate


@pytest.fixture
def good(tree12):
    return ColorMapping(tree12, N=6, k=2)


def _mutate(mapping, node, new_color) -> FrozenMapping:
    colors = mapping.color_array().copy()
    colors[node] = new_color
    return FrozenMapping(mapping.tree, mapping.num_modules, colors, source="mutant")


class TestMutationDetection:
    def test_parent_color_copy_breaks_paths(self, good):
        """Copying a parent's color onto its child must show up in P costs."""
        node = 2000
        mutant = _mutate(good, node, good.module_of((node - 1) >> 1))
        assert family_cost(good, PTemplate(6)) == 0
        assert family_cost(mutant, PTemplate(6)) >= 1

    def test_sibling_color_copy_breaks_subtrees(self, good):
        node = 2001
        sibling = node + 1 if node % 2 else node - 1
        mutant = _mutate(good, node, good.module_of(sibling))
        assert family_cost(mutant, STemplate(3)) >= 1

    def test_single_mutation_localized(self, good):
        """Exactly the instances containing the mutated node may change."""
        node = 1500
        mutant = _mutate(good, node, (good.module_of(node) + 1) % good.num_modules)
        fam = PTemplate(6)
        matrix = fam.instance_matrix(good.tree)
        before = matrix_conflicts(good.color_array(), matrix, good.num_modules)
        after = matrix_conflicts(mutant.color_array(), matrix, good.num_modules)
        changed = np.nonzero(before != after)[0]
        for idx in changed:
            assert node in matrix[idx]

    def test_every_single_swap_near_top_is_caught(self, good):
        """For nodes in the top levels, ANY recoloring to an ancestor's color
        is caught by the path family — no blind spots."""
        for node in range(1, 31):
            ancestor_color = good.module_of(0)
            if good.module_of(node) == ancestor_color:
                continue
            mutant = _mutate(good, node, ancestor_color)
            assert family_cost(mutant, PTemplate(6)) >= 1, f"missed node {node}"

    def test_level_window_mutation(self, good):
        """Recoloring a node to its neighbor's color breaks L windows."""
        node = 3000
        mutant = _mutate(good, node, good.module_of(node + 1))
        base = family_cost(good, LTemplate(3))
        assert family_cost(mutant, LTemplate(3)) >= base

    def test_instance_conflicts_sees_planted_duplicates(self, rng):
        colors = np.arange(64)
        nodes = rng.choice(64, size=10, replace=False)
        assert instance_conflicts(colors, nodes) == 0
        colors[nodes[1]] = colors[nodes[0]]
        assert instance_conflicts(colors, nodes) == 1
        colors[nodes[2]] = colors[nodes[0]]
        assert instance_conflicts(colors, nodes) == 2
