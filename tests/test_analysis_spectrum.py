"""Unit tests for the conflict spectrum."""

import numpy as np
import pytest

from repro.analysis import conflict_spectrum, family_cost
from repro.core import ColorMapping, ModuloMapping, RandomMapping
from repro.templates import LTemplate, PTemplate, STemplate


class TestSpectrum:
    def test_cf_family_is_all_zero(self, tree12):
        mapping = ColorMapping(tree12, N=6, k=2)
        spec = conflict_spectrum(mapping, STemplate(3))
        assert spec.max == 0
        assert spec.cf_fraction == 1.0
        assert spec.mean == 0.0
        assert spec.histogram.tolist() == [spec.instances]

    def test_max_matches_family_cost(self, tree12):
        mapping = ModuloMapping(tree12, 9)
        fam = PTemplate(7)
        spec = conflict_spectrum(mapping, fam)
        assert spec.max == family_cost(mapping, fam)

    def test_histogram_sums_to_instances(self, tree12):
        mapping = RandomMapping(tree12, 9, seed=2)
        fam = LTemplate(12)
        spec = conflict_spectrum(mapping, fam)
        assert spec.histogram.sum() == spec.instances == fam.count(tree12)

    def test_percentiles_ordered(self, tree12):
        mapping = RandomMapping(tree12, 9, seed=2)
        spec = conflict_spectrum(mapping, LTemplate(18))
        assert 0 <= spec.p50 <= spec.p95 <= spec.max

    def test_mean_matches_histogram(self, tree12):
        mapping = ModuloMapping(tree12, 9)
        spec = conflict_spectrum(mapping, PTemplate(5))
        from_hist = (np.arange(spec.histogram.size) * spec.histogram).sum() / spec.instances
        assert spec.mean == pytest.approx(from_hist)

    def test_empty_family_rejected(self, tree12):
        mapping = ModuloMapping(tree12, 9)
        with pytest.raises(ValueError):
            conflict_spectrum(mapping, PTemplate(99))

    def test_spectrum_separates_typical_from_worst(self, tree12):
        """COLOR at max parallelism: worst case 1 but most instances CF."""
        mapping = ColorMapping.max_parallelism(tree12, 4)
        spec = conflict_spectrum(mapping, PTemplate(12))
        assert spec.max == 1
        assert spec.cf_fraction > 0.1  # a visible CF share
