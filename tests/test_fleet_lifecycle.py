"""Shard lifecycle state machine: health edges, suspicion grace, reset/rejoin
semantics and the coordinator's fleet-level checkpoint state."""

import json

import pytest

from repro.core import ColorMapping
from repro.fleet import (
    HEALTH_STATES,
    FleetCoordinator,
    FleetSupervisor,
    diff_fleet_reports,
    heavy_tailed_tenants,
)
from repro.memory import ParallelMemorySystem
from repro.memory.faults import FaultSchedule, FaultWindow
from repro.obs import EventRecorder
from repro.serve import ServeEngine
from repro.serve.durability import DurabilityError
from repro.trees import CompleteBinaryTree

WORKLOAD = "subtree:7=1,path:5=1,level:4=1"


def make_shards(n, levels=8, modules=7):
    shards = []
    for _ in range(n):
        tree = CompleteBinaryTree(levels)
        mapping = ColorMapping.for_modules(tree, modules)
        shards.append(
            ServeEngine(ParallelMemorySystem(mapping), policy="greedy-pack")
        )
    return shards


@pytest.fixture
def tree():
    return CompleteBinaryTree(8)


def population(tree, num_tenants=8, rate=6.0, seed=7):
    return heavy_tailed_tenants(tree, num_tenants, WORKLOAD, rate, seed=seed)


def identity_holds(report):
    return (
        report.completed + report.quota_shed + report.shard_shed
        + report.fleet_shed
        == report.arrivals
    )


# -- the health state machine --------------------------------------------------


def test_health_states_registry():
    assert HEALTH_STATES == ("alive", "suspected", "dead", "restoring")


def test_full_lifecycle_event_sequence(tree):
    recorder = EventRecorder()
    coordinator = FleetCoordinator(
        make_shards(2), recorder=recorder, kills=["1@60"]
    )
    supervisor = FleetSupervisor(coordinator, restart_after=30)
    report = supervisor.serve(population(tree).clients, 150)

    states = [
        (e["previous"], e["state"])
        for e in recorder.events
        if e["ev"] == "shard_state" and e["shard"] == 1
    ]
    assert states == [
        ("alive", "suspected"),
        ("suspected", "dead"),
        ("dead", "restoring"),
        ("restoring", "alive"),
    ]
    rejoins = [e for e in recorder.events if e["ev"] == "shard_rejoin"]
    assert len(rejoins) == 1
    assert rejoins[0]["shard"] == 1
    # no state dir: only the fresh rung is available
    assert rejoins[0]["how"] == "fresh"
    assert report.rejoined == [1]
    assert report.restarts == 1
    assert report.health == ["alive", "alive"]
    assert identity_holds(report)


def test_suspect_grace_lets_transient_outage_recover(tree):
    recorder = EventRecorder()
    coordinator = FleetCoordinator(
        make_shards(1), recorder=recorder, suspect_grace=10
    )
    coordinator.start(population(tree, rate=2.0).clients, 150)
    modules = coordinator.shards[0].system.num_modules
    # a bounded full-array outage shorter than the grace: suspected, then
    # cleared — never killed
    coordinator._kills[0] = FaultSchedule(
        [FaultWindow("fail", m, 50, 56) for m in range(modules)]
    )
    while coordinator.step():
        pass
    report = coordinator.finish()

    assert report.dead_shards == []
    assert report.health == ["alive"]
    states = [
        (e["previous"], e["state"])
        for e in recorder.events
        if e["ev"] == "shard_state"
    ]
    assert states == [("alive", "suspected"), ("suspected", "alive")]
    # a suspected sole shard takes no placements: arrivals in the outage
    # window shed at the fleet edge, and the books still balance
    assert report.fleet_shed > 0
    assert identity_holds(report)


def test_suspect_grace_expiry_still_kills(tree):
    coordinator = FleetCoordinator(
        make_shards(2), suspect_grace=5, kills=["1@50"]
    )
    report = coordinator.run(population(tree).clients, 150)
    assert report.dead_shards == [1]
    assert report.health[1] == "dead"
    assert identity_holds(report)


def test_suspected_shard_steps_but_takes_no_traffic(tree):
    recorder = EventRecorder()
    coordinator = FleetCoordinator(
        make_shards(2), recorder=recorder, suspect_grace=8, kills=["0@60"]
    )
    report = coordinator.run(population(tree).clients, 200)
    assert report.dead_shards == [0]
    routed_while_suspected = [
        e
        for e in recorder.events
        if e["ev"] in ("fleet_route", "fleet_reroute")
        and e["shard"] == 0
        and e["cycle"] >= 60
    ]
    assert routed_while_suspected == []


def test_alive_view_is_boolean_facade(tree):
    coordinator = FleetCoordinator(make_shards(3))
    view = coordinator._alive
    assert len(view) == 3
    assert list(view) == [True, True, True]
    view[1] = False
    assert coordinator.health[1] == "dead"
    assert coordinator.alive_shards == [0, 2]
    view[1] = True
    assert coordinator.health == ["alive"] * 3


def test_restore_transitions_validated(tree):
    coordinator = FleetCoordinator(make_shards(2))
    with pytest.raises(ValueError, match="only dead shards"):
        coordinator.begin_restore(0)
    with pytest.raises(ValueError, match="nothing to rejoin"):
        coordinator.rejoin(0)
    coordinator._alive[1] = False
    coordinator.begin_restore(1)
    assert coordinator.health[1] == "restoring"
    coordinator.abandon_restore(1)
    assert coordinator.health[1] == "dead"


def test_set_health_rejects_unknown_state(tree):
    coordinator = FleetCoordinator(make_shards(1))
    with pytest.raises(ValueError, match="unknown health state"):
        coordinator._set_health(0, "zombie", 0)


# -- reset: byte-identical re-runs ---------------------------------------------


def test_reset_rearms_kills_for_byte_identical_rerun(tree):
    coordinator = FleetCoordinator(
        make_shards(2), router="affinity", kills=["1@100"]
    )
    first = coordinator.run(population(tree).clients, 200)
    second = coordinator.run(population(tree).clients, 200)
    assert first.dead_shards == [1]
    assert second.dead_shards == [1]
    assert diff_fleet_reports(first, second) == []


def test_reset_rearms_kills_after_a_rejoin_popped_them(tree):
    coordinator = FleetCoordinator(make_shards(2), kills=["1@60"])
    supervisor = FleetSupervisor(coordinator, restart_after=40)
    healed = supervisor.serve(population(tree).clients, 200)
    assert healed.restarts == 1
    # the rejoin retired shard 1's kill schedule; a plain re-run on the
    # same coordinator must re-arm and kill it again
    rerun = coordinator.run(population(tree).clients, 200)
    assert rerun.dead_shards == [1]
    assert rerun.restarts == 0
    assert identity_holds(rerun)


# -- fleet-level checkpoint state ----------------------------------------------


def test_state_dict_round_trips_through_json_mid_run(tree):
    coordinator = FleetCoordinator(
        make_shards(2), router="affinity", kills=["1@60"]
    )
    clients = population(tree).clients
    coordinator.start(clients, 120)
    for _ in range(80):
        coordinator.step()
    state = json.loads(json.dumps(coordinator.state_dict()))
    assert state["version"] == 1
    assert state["health"][1] == "dead"

    # restoring over the same engines at the same boundary is a no-op that
    # the run can continue from
    coordinator.restore_state(state, clients)
    assert coordinator._cycle == state["cycle"]
    while coordinator.step():
        pass
    report = coordinator.finish()
    assert report.dead_shards == [1]
    assert identity_holds(report)


def test_restore_state_validates_version_and_router(tree):
    coordinator = FleetCoordinator(
        make_shards(2), router="affinity", kills=["1@60"]
    )
    clients = population(tree).clients
    coordinator.start(clients, 120)
    for _ in range(80):
        coordinator.step()
    state = json.loads(json.dumps(coordinator.state_dict()))

    bad_version = dict(state, version=99)
    with pytest.raises(DurabilityError, match="version"):
        coordinator.restore_state(bad_version, clients)

    wrong_router = FleetCoordinator(make_shards(2), router="round-robin")
    with pytest.raises(DurabilityError, match="router"):
        wrong_router.restore_state(json.loads(json.dumps(state)), clients)

    wrong_shards = FleetCoordinator(make_shards(3), router="affinity")
    with pytest.raises(DurabilityError, match="shards"):
        wrong_shards.restore_state(json.loads(json.dumps(state)), clients)
