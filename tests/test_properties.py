"""Property-based tests (hypothesis) on the core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import instance_conflicts
from repro.core import resolve_color
from repro.core.basic_color import basic_color_array, num_colors
from repro.core.micro_label import micro_label_index_array, micro_label_list_size
from repro.trees import coords, traversal
from repro.trees.blocks import block_nodes, block_of, position_in_block

# -- strategies ---------------------------------------------------------------

node_ids = st.integers(min_value=0, max_value=(1 << 40) - 2)
small_nodes = st.integers(min_value=0, max_value=(1 << 16) - 2)


class TestCoordProperties:
    @given(node_ids)
    def test_coord_round_trip(self, node):
        i, j = coords.id_to_coord(node)
        assert coords.coord_to_id(i, j) == node
        assert 0 <= i < (1 << j)

    @given(node_ids)
    def test_children_invert_parent(self, node):
        assert coords.parent(coords.child_left(node)) == node
        assert coords.parent(coords.child_right(node)) == node
        assert coords.child_right(node) == coords.sibling(coords.child_left(node))

    @given(node_ids, st.integers(min_value=0, max_value=40))
    def test_ancestor_composition(self, node, d):
        """anc(anc(v, a), b) == anc(v, a+b) whenever both exist."""
        level = coords.level_of(node)
        if d > level:
            d = level
        a = d // 2
        b = d - a
        assert coords.ancestor(coords.ancestor(node, a), b) == coords.ancestor(node, d)

    @given(node_ids)
    def test_level_consistent_with_ancestors(self, node):
        level = coords.level_of(node)
        assert coords.ancestor(node, level) == 0
        if level:
            assert coords.level_of(coords.parent(node)) == level - 1

    @given(small_nodes, small_nodes)
    def test_lca_is_common_and_lowest(self, a, b):
        lca = coords.lowest_common_ancestor(a, b)
        assert coords.is_ancestor(lca, a) and coords.is_ancestor(lca, b)
        # one level further down loses common-ancestry
        for child in (coords.child_left(lca), coords.child_right(lca)):
            assert not (coords.is_ancestor(child, a) and coords.is_ancestor(child, b))

    @given(node_ids, st.integers(min_value=1, max_value=30))
    def test_path_up_is_ancestor_chain(self, node, length):
        level = coords.level_of(node)
        length = min(length, level + 1)
        path = coords.path_up(node, length)
        assert len(path) == length
        for d, v in enumerate(path):
            assert v == coords.ancestor(node, d)


class TestTraversalProperties:
    @given(st.integers(min_value=0, max_value=1000), st.integers(min_value=1, max_value=8))
    def test_subtree_nodes_size_and_membership(self, root, levels):
        nodes = traversal.subtree_nodes(root, levels)
        assert nodes.size == (1 << levels) - 1
        assert len(set(nodes.tolist())) == nodes.size
        for v in nodes:
            assert coords.is_ancestor(root, int(v))
            assert coords.level_of(int(v)) - coords.level_of(root) < levels

    @given(st.integers(min_value=0, max_value=500), st.integers(min_value=0, max_value=254))
    def test_bfs_rank_inverse(self, root, rank):
        node = traversal.bfs_node_of_subtree(root, rank)
        r, s = traversal.bfs_rank_decompose(rank)
        assert coords.level_of(node) == coords.level_of(root) + r


class TestBlockProperties:
    @given(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=5, max_value=14),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_block_partition(self, k, j, seed):
        """Every node is in exactly the block its index arithmetic says."""
        n = 1 << j
        i = seed % n
        node = (1 << j) - 1 + i
        h = block_of(node, k)
        assert node in set(block_nodes(h, j, k).tolist())
        assert position_in_block(node, k) == i % (1 << (k - 1))


class TestColoringProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=2, max_value=9),
    )
    def test_basic_color_palette(self, k, N):
        if N < k:
            N = k
        colors = basic_color_array(N, k)
        assert colors.min() >= 0
        assert colors.max() < num_colors(N, k)
        # Phase 1: top k levels are a rainbow
        top = colors[: (1 << min(k, N)) - 1]
        assert np.unique(top).size == top.size

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=0, max_value=(1 << 20) - 2),
    )
    def test_resolver_color_range(self, k, N, node):
        if N <= k:
            N = k + 1
        color = resolve_color(node, N, k)
        assert 0 <= color < num_colors(N, k)

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=0, max_value=(1 << 18) - 2),
    )
    def test_resolver_agrees_with_parentchild_rainbow(self, k, N, node):
        """Any node and its parent always differ in color (paths are P(N)-CF
        for N >= 2, so adjacent tree nodes never collide)."""
        if N <= k:
            N = k + 1
        if node == 0:
            return
        assert resolve_color(node, N, k) != resolve_color(coords.parent(node), N, k)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=7))
    def test_micro_label_pattern_palette(self, m):
        for l in range(1, m):
            idx = micro_label_index_array(m, l)
            assert idx.min() >= 0
            assert idx.max() < micro_label_list_size(m, l)


class TestConflictMetricProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=20, unique=True),
        st.integers(min_value=1, max_value=8),
    )
    def test_conflicts_bounds(self, nodes, M):
        """0 <= conflicts <= size - 1, and == ceil(size/M) - 1 at least."""
        rng = np.random.default_rng(42)
        colors = rng.integers(0, M, 64)
        arr = np.array(nodes)
        got = instance_conflicts(colors, arr)
        assert 0 <= got <= arr.size - 1
        assert got >= -(-arr.size // M) - 1  # trivial lower bound

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=30, unique=True))
    def test_conflicts_permutation_invariant(self, nodes):
        rng = np.random.default_rng(7)
        colors = rng.integers(0, 5, 64)
        arr = np.array(nodes)
        shuffled = arr.copy()
        rng.shuffle(shuffled)
        assert instance_conflicts(colors, arr) == instance_conflicts(colors, shuffled)
