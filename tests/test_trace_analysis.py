"""Unit tests for trace profiling."""

import numpy as np
import pytest

from repro.apps import level_sweep_trace
from repro.bench.workloads import heap_workload
from repro.memory import AccessTrace, profile_trace
from repro.trees import CompleteBinaryTree


class TestProfile:
    def test_basic_counts(self):
        trace = AccessTrace()
        trace.add(np.array([0, 1, 2]), label="a")
        trace.add(np.array([0, 3]), label="b")
        profile = profile_trace(trace)
        assert profile.accesses == 2
        assert profile.total_items == 5
        assert profile.working_set == 4
        assert profile.mean_access_size == 2.5
        assert profile.max_access_size == 3

    def test_hottest_node(self):
        trace = AccessTrace()
        for _ in range(5):
            trace.add(np.array([7, 8]))
        trace.add(np.array([1]))
        profile = profile_trace(trace)
        assert profile.hottest_node in (7, 8)
        assert profile.hottest_count == 5

    def test_heap_workload_root_bias_one(self):
        tree = CompleteBinaryTree(10)
        profile = profile_trace(heap_workload(tree, ops=150))
        assert profile.root_bias == 1.0
        assert profile.top_fraction > 0.1  # heavily concentrated

    def test_scan_workload_uniform(self):
        tree = CompleteBinaryTree(10)
        profile = profile_trace(level_sweep_trace(tree, window=8))
        assert profile.working_set == tree.num_nodes
        assert profile.root_bias < 0.05  # one access out of many touches root
        assert profile.hottest_count == 1  # every node exactly once

    def test_level_histogram_sums_to_items(self):
        tree = CompleteBinaryTree(9)
        trace = heap_workload(tree, ops=100)
        profile = profile_trace(trace)
        assert profile.level_histogram.sum() == profile.total_items

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            profile_trace(AccessTrace())
