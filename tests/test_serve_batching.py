"""Unit tests for batch-formation policies."""

import numpy as np
import pytest

from repro.core import ColorMapping, ModuloMapping
from repro.serve import (
    POLICIES,
    FifoPolicy,
    GreedyPackPolicy,
    LoadAwarePolicy,
    Request,
    batch_conflict_bound,
    make_policy,
)
from repro.serve.batching import build_batch
from repro.templates import CompositeSampler, LTemplate, PTemplate, STemplate
from repro.trees import CompleteBinaryTree


@pytest.fixture(scope="module")
def tree():
    return CompleteBinaryTree(11)


@pytest.fixture(scope="module")
def mapping(tree):
    return ColorMapping.max_parallelism(tree, 4)  # M=15, N=11, k=3


def _requests(instances):
    return [
        Request(request_id=i, client_id=0, instance=inst, arrival_cycle=0)
        for i, inst in enumerate(instances)
    ]


def _disjoint_subtrees(tree, family, n):
    """First ``n`` pairwise-disjoint instances of ``family``."""
    out, used = [], set()
    for inst in family.instances(tree):
        if used.isdisjoint(inst.node_set()):
            out.append(inst)
            used |= inst.node_set()
            if len(out) == n:
                return out
    raise AssertionError("not enough disjoint instances")


class TestRegistry:
    def test_make_policy_names(self):
        for name, cls in POLICIES.items():
            assert isinstance(make_policy(name), cls)
            assert make_policy(name).name == name

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            make_policy("lifo")

    def test_bound_formula(self):
        assert batch_conflict_bound(1, 3) == 3
        assert batch_conflict_bound(4, 3) == 6


class TestFifo:
    def test_one_request_per_batch(self, tree, mapping):
        reqs = _requests(_disjoint_subtrees(tree, STemplate(7), 3))
        batch = FifoPolicy().form(reqs, mapping)
        assert len(batch) == 1
        assert batch.requests[0] is reqs[0]
        assert batch.composite is None


class TestGreedyPack:
    def test_packs_disjoint_up_to_cap(self, tree, mapping):
        reqs = _requests(_disjoint_subtrees(tree, STemplate(7), 6))
        batch = GreedyPackPolicy(max_components=4).form(reqs, mapping)
        assert len(batch) == 4
        assert batch.num_components == 4
        # the packed batch is a certified composite instance
        assert batch.composite is not None
        assert batch.composite.num_components == 4
        assert batch.size == 28

    def test_skips_overlapping_requests(self, tree, mapping):
        a = STemplate(7).instance_at(tree, 0)
        overlap = STemplate(7).instance_at(tree, 1)  # child subtree overlaps a
        assert not a.disjoint_from(overlap)
        b = STemplate(7).instance_at(tree, 200)
        reqs = _requests([a, overlap, b])
        batch = GreedyPackPolicy(max_components=4).form(reqs, mapping)
        assert [r.instance for r in batch.requests] == [a, b]

    def test_head_always_served(self, tree, mapping):
        reqs = _requests([STemplate(7).instance_at(tree, 0)])
        batch = GreedyPackPolicy(max_components=4).form(reqs, mapping)
        assert len(batch) == 1

    def test_composite_requests_count_their_components(self, tree, mapping):
        rng = np.random.default_rng(7)
        sampler = CompositeSampler(tree)
        comp = sampler.sample(3, 20, rng)
        single = next(
            inst
            for inst in STemplate(7).instances(tree)
            if comp.disjoint_from(inst)
        )
        reqs = _requests([comp, single, single])
        batch = GreedyPackPolicy(max_components=4).form(reqs, mapping)
        # 3 components from the composite + 1 elementary = cap; no room for more
        assert batch.num_components == 4
        assert len(batch) == 2

    def test_respects_conflict_budget(self, tree):
        # modulo-3 mapping: a level run of 9 loads each of 3 modules by 3
        mapping = ModuloMapping(tree, 3)
        runs = [LTemplate(9).instance_at(tree, i) for i in (600, 620, 640, 660)]
        reqs = _requests(runs)
        unbounded = GreedyPackPolicy(max_components=4, bound_k=None).form(
            reqs, mapping
        )
        assert unbounded.conflicts > batch_conflict_bound(2, 1)
        # the head rides alone: every addition would blow the c-1+k budget
        # (the head itself is served regardless of its own conflicts)
        bounded = GreedyPackPolicy(max_components=4, bound_k=1).form(reqs, mapping)
        assert len(bounded) == 1
        assert len(bounded) < len(unbounded)

    def test_batches_under_color_stay_within_paper_bound(self, tree, mapping):
        """Random CF-family requests packed with bound_k=k never exceed c-1+k."""
        rng = np.random.default_rng(3)
        policy = GreedyPackPolicy(max_components=4, bound_k=mapping.k)
        families = [STemplate(15), PTemplate(11), LTemplate(7)]
        for _ in range(50):
            insts = [
                families[int(rng.integers(len(families)))].sample(tree, rng)
                for _ in range(8)
            ]
            batch = policy.form(_requests(insts), mapping)
            assert batch.conflicts <= batch_conflict_bound(
                batch.num_components, mapping.k
            )


class TestLoadAware:
    def test_prefers_low_load_candidate(self, tree):
        mapping = ModuloMapping(tree, 3)
        head = LTemplate(3).instance_at(tree, 600)  # one request per module
        heavy = LTemplate(9).instance_at(tree, 620)  # 3 per module
        light = LTemplate(3).instance_at(tree, 660)
        reqs = _requests([head, heavy, light])
        batch = LoadAwarePolicy(max_components=2, bound_k=None).form(reqs, mapping)
        assert [r.instance for r in batch.requests] == [head, light]

    def test_window_bounds_lookahead(self, tree, mapping):
        reqs = _requests(_disjoint_subtrees(tree, STemplate(7), 6))
        policy = LoadAwarePolicy(max_components=4, bound_k=None, window=1)
        batch = policy.form(reqs, mapping)
        assert len(batch) == 2  # head + the single candidate in the window

    def test_matches_greedy_feasibility(self, tree, mapping):
        """Load-aware packs at least as many components as fifo, never more
        than the cap, and stays disjoint."""
        rng = np.random.default_rng(11)
        insts = [STemplate(7).sample(tree, rng) for _ in range(10)]
        batch = LoadAwarePolicy(max_components=4).form(_requests(insts), mapping)
        assert 1 <= batch.num_components <= 4
        seen = set()
        for req in batch.requests:
            assert seen.isdisjoint(req.instance.node_set())
            seen |= req.instance.node_set()


class TestBuildBatch:
    def test_empty_batch_rejected(self, mapping):
        with pytest.raises(ValueError):
            build_batch([], mapping)

    def test_counts_and_conflicts(self, tree, mapping):
        reqs = _requests([PTemplate(11).instance_at(tree, 0)])
        batch = build_batch(reqs, mapping)
        assert batch.module_counts.sum() == 11
        assert batch.conflicts == int(batch.module_counts.max()) - 1

    def test_non_elementary_kind_skips_composite(self, tree, mapping):
        from repro.templates import TemplateInstance

        trace_inst = TemplateInstance(kind="trace", nodes=np.array([3, 4, 5]))
        sub = STemplate(7).instance_at(tree, 100)
        batch = build_batch(_requests([trace_inst, sub]), mapping)
        assert batch.composite is None
        assert batch.size == 10
