"""Tests for the hypercube extension."""

import numpy as np
import pytest

from repro.analysis import chromatic_number, conflict_graph
from repro.analysis.conflicts import instance_conflicts
from repro.hypercube import (
    Hypercube,
    SyndromeMapping,
    bch_like_check_matrix,
    code_min_distance,
    extended_hamming_check_matrix,
    hamming_check_matrix,
    hamming_distance,
    parity_check_matrix,
    subcube_instance,
    subcube_instances,
    submasks,
)


class TestCube:
    def test_geometry(self):
        cube = Hypercube(5)
        assert cube.num_nodes == 32
        assert len(cube.neighbors(0)) == 5
        assert sorted(cube.neighbors(0b101)) == sorted(
            [0b100, 0b111, 0b001, 0b1101, 0b10101]
        )

    def test_submasks(self):
        assert sorted(submasks(0b101)) == [0, 1, 4, 5]
        assert list(submasks(0)) == [0]

    def test_subcube_instance(self):
        cube = Hypercube(4)
        inst = subcube_instance(cube, base=0b1000, mask=0b0011)
        assert inst.tolist() == [8, 9, 10, 11]
        with pytest.raises(ValueError):
            subcube_instance(cube, base=0b0001, mask=0b0011)  # overlap

    def test_instance_counts(self):
        cube = Hypercube(5)
        # C(5, k) * 2**(5-k)
        from math import comb

        for k in range(4):
            count = sum(1 for _ in subcube_instances(cube, k))
            assert count == comb(5, k) * (1 << (5 - k))

    def test_membership_property(self):
        """Two nodes share a k-subcube iff hamming distance <= k."""
        cube = Hypercube(5)
        k = 2
        together = set()
        for inst in subcube_instances(cube, k):
            nodes = inst.tolist()
            for i, a in enumerate(nodes):
                for b in nodes[i + 1 :]:
                    together.add((a, b))
        for a in range(32):
            for b in range(a + 1, 32):
                expected = hamming_distance(a, b) <= k
                assert ((a, b) in together) == expected

    def test_invalid(self):
        with pytest.raises(ValueError):
            Hypercube(0)
        with pytest.raises(ValueError):
            list(subcube_instances(Hypercube(4), 9))


class TestCheckMatrices:
    def test_parity_distance_2(self):
        assert code_min_distance(parity_check_matrix(6)) == 2

    @pytest.mark.parametrize("n", [3, 5, 7, 9])
    def test_hamming_distance_3(self, n):
        assert code_min_distance(hamming_check_matrix(n)) >= 3

    @pytest.mark.parametrize("n", [4, 7, 8])
    def test_extended_hamming_distance_4(self, n):
        assert code_min_distance(extended_hamming_check_matrix(n)) >= 4

    def test_bch_like_reaches_requested_distance(self):
        for n, d in [(6, 4), (7, 5), (8, 5)]:
            check = bch_like_check_matrix(n, d)
            assert check.shape[1] == n
            assert code_min_distance(check) >= d

    def test_hamming_row_count_tight(self):
        # n = 7 fits in r = 3 (perfect Hamming)
        assert hamming_check_matrix(7).shape[0] == 3


class TestSyndromeMapping:
    @pytest.mark.parametrize("n,k", [(5, 1), (6, 2), (7, 2), (6, 3), (7, 4)])
    def test_cf_on_all_k_subcubes(self, n, k):
        cube = Hypercube(n)
        mapping = SyndromeMapping.for_subcubes(cube, k)
        colors = mapping.color_array()
        assert all(
            instance_conflicts(colors, inst) == 0
            for inst in subcube_instances(cube, k)
        )

    def test_cosets_perfectly_balanced(self):
        mapping = SyndromeMapping.for_subcubes(Hypercube(7), 2)
        loads = mapping.module_loads()
        assert loads.max() == loads.min()  # cosets of a linear code

    def test_module_of_matches_array(self):
        cube = Hypercube(6)
        mapping = SyndromeMapping.for_subcubes(cube, 2)
        arr = mapping.color_array()
        for x in range(cube.num_nodes):
            assert mapping.module_of(x) == arr[x]

    def test_perfect_hamming_is_exactly_optimal(self):
        """Q_5, k=2: exact chromatic number equals the syndrome count."""
        cube = Hypercube(5)
        instances = list(subcube_instances(cube, 2))
        chi = chromatic_number(conflict_graph(instances, cube.num_nodes))
        assert chi == SyndromeMapping.for_subcubes(cube, 2).num_modules == 8

    def test_smaller_codes_fail(self):
        """A distance-2 code cannot serve k = 2 subcubes: planted conflict."""
        cube = Hypercube(6)
        weak = SyndromeMapping(cube, parity_check_matrix(6))
        colors = weak.color_array()
        assert any(
            instance_conflicts(colors, inst) > 0
            for inst in subcube_instances(cube, 2)
        )

    def test_bad_check_shape_rejected(self):
        with pytest.raises(ValueError):
            SyndromeMapping(Hypercube(5), np.ones((2, 4), dtype=np.int64))
        with pytest.raises(ValueError):
            SyndromeMapping.for_subcubes(Hypercube(5), 0)
