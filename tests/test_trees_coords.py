"""Unit tests for node addressing (repro.trees.coords)."""

import numpy as np
import pytest

from repro.trees import coords


class TestCoordConversions:
    def test_root(self):
        assert coords.coord_to_id(0, 0) == 0
        assert coords.id_to_coord(0) == (0, 0)

    def test_round_trip_all_small(self):
        for j in range(8):
            for i in range(1 << j):
                node = coords.coord_to_id(i, j)
                assert coords.id_to_coord(node) == (i, j)

    def test_bfs_ids_are_consecutive_per_level(self):
        assert [coords.coord_to_id(i, 2) for i in range(4)] == [3, 4, 5, 6]

    def test_rejects_out_of_range_index(self):
        with pytest.raises(ValueError):
            coords.coord_to_id(4, 2)
        with pytest.raises(ValueError):
            coords.coord_to_id(-1, 2)

    def test_rejects_negative_level_and_id(self):
        with pytest.raises(ValueError):
            coords.coord_to_id(0, -1)
        with pytest.raises(ValueError):
            coords.id_to_coord(-1)
        with pytest.raises(ValueError):
            coords.level_of(-5)

    def test_level_and_index(self):
        assert coords.level_of(0) == 0
        assert coords.level_of(1) == 1
        assert coords.level_of(2) == 1
        assert coords.level_of(6) == 2
        assert coords.index_in_level(6) == 3

    def test_level_at_power_boundaries(self):
        for j in range(1, 20):
            first = (1 << j) - 1
            assert coords.level_of(first) == j
            assert coords.level_of(first - 1) == j - 1


class TestFamilyRelations:
    def test_parent_child_inverse(self):
        for node in range(1, 200):
            assert coords.parent(coords.child_left(node)) == node
            assert coords.parent(coords.child_right(node)) == node

    def test_parent_of_root_raises(self):
        with pytest.raises(ValueError):
            coords.parent(0)

    def test_sibling_is_involution(self):
        for node in range(1, 200):
            sib = coords.sibling(node)
            assert sib != node
            assert coords.sibling(sib) == node
            assert coords.parent(sib) == coords.parent(node)

    def test_sibling_of_root_raises(self):
        with pytest.raises(ValueError):
            coords.sibling(0)

    def test_ancestor_matches_repeated_parent(self):
        node = coords.coord_to_id(37, 6)
        walk = node
        for d in range(7):
            assert coords.ancestor(node, d) == walk
            if walk:
                walk = coords.parent(walk)

    def test_ancestor_formula_from_paper(self):
        # ANC(i, j, m) = v(i >> m, j - m)
        node = coords.coord_to_id(45, 6)
        assert coords.ancestor(node, 2) == coords.coord_to_id(45 >> 2, 4)

    def test_ancestor_above_root_raises(self):
        with pytest.raises(ValueError):
            coords.ancestor(3, 5)
        with pytest.raises(ValueError):
            coords.ancestor(3, -1)

    def test_ancestors_iter_ends_at_root(self):
        chain = list(coords.ancestors_iter(coords.coord_to_id(13, 4)))
        assert len(chain) == 4
        assert chain[-1] == 0

    def test_is_ancestor(self):
        assert coords.is_ancestor(0, 100)
        assert coords.is_ancestor(5, 5)
        assert coords.is_ancestor(1, 3)
        assert not coords.is_ancestor(3, 1)
        assert not coords.is_ancestor(1, 2)

    def test_lowest_common_ancestor(self):
        assert coords.lowest_common_ancestor(3, 4) == 1
        assert coords.lowest_common_ancestor(3, 6) == 0
        assert coords.lowest_common_ancestor(7, 8) == 3
        assert coords.lowest_common_ancestor(7, 7) == 7
        assert coords.lowest_common_ancestor(7, 3) == 3

    def test_lca_different_levels(self):
        deep = coords.coord_to_id(5, 5)
        assert coords.lowest_common_ancestor(deep, coords.ancestor(deep, 3)) == \
            coords.ancestor(deep, 3)


class TestLeavesAndPaths:
    def test_leftmost_rightmost_leaf(self):
        # root of a 4-level tree spans leaves 7..14
        assert coords.leftmost_leaf(0, 4) == 7
        assert coords.rightmost_leaf(0, 4) == 14
        assert coords.leftmost_leaf(2, 4) == 11
        assert coords.rightmost_leaf(2, 4) == 14

    def test_leaf_of_leaf_is_itself(self):
        assert coords.leftmost_leaf(9, 4) == 9
        assert coords.rightmost_leaf(9, 4) == 9

    def test_leaf_below_tree_raises(self):
        with pytest.raises(ValueError):
            coords.leftmost_leaf(20, 4)

    def test_node_exists(self):
        assert coords.node_exists(0, 1)
        assert not coords.node_exists(1, 1)
        assert coords.node_exists(14, 4)
        assert not coords.node_exists(15, 4)

    def test_path_up_contents(self):
        path = coords.path_up(11, 4)
        assert path == [11, 5, 2, 0]

    def test_path_up_length_one(self):
        assert coords.path_up(6, 1) == [6]

    def test_path_up_too_long_raises(self):
        with pytest.raises(ValueError):
            coords.path_up(3, 4)
        with pytest.raises(ValueError):
            coords.path_up(3, 0)

    def test_path_down(self):
        assert coords.path_down(0, 11) == [0, 2, 5, 11]
        assert coords.path_down(5, 5) == [5]

    def test_path_down_non_ancestor_raises(self):
        with pytest.raises(ValueError):
            coords.path_down(1, 6)


class TestVectorized:
    def test_level_of_array_matches_scalar(self):
        nodes = np.arange(0, 5000, dtype=np.int64)
        got = coords.level_of_array(nodes)
        expect = np.array([coords.level_of(int(v)) for v in nodes])
        assert np.array_equal(got, expect)

    def test_level_of_array_large_power_boundaries(self):
        # float log2 would round these wrong without the correction
        nodes = np.array(
            [(1 << j) - 1 for j in range(40, 62)]
            + [(1 << j) - 2 for j in range(40, 62)],
            dtype=np.int64,
        )
        got = coords.level_of_array(nodes)
        expect = np.array([coords.level_of(int(v)) for v in nodes])
        assert np.array_equal(got, expect)

    def test_ancestor_array_matches_scalar(self):
        nodes = np.arange(63, 127, dtype=np.int64)  # level 6
        got = coords.ancestor_array(nodes, 3)
        expect = np.array([coords.ancestor(int(v), 3) for v in nodes])
        assert np.array_equal(got, expect)

    def test_ancestor_array_broadcast_distance(self):
        nodes = np.array([63, 64, 65], dtype=np.int64)
        d = np.array([1, 2, 3])
        got = coords.ancestor_array(nodes, d)
        expect = np.array([coords.ancestor(63, 1), coords.ancestor(64, 2), coords.ancestor(65, 3)])
        assert np.array_equal(got, expect)
