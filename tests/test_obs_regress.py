"""Unit tests for the telemetry regression gate."""

import pytest

from repro.bench.workloads import heap_workload
from repro.core import ColorMapping, ModuloMapping
from repro.memory import ParallelMemorySystem
from repro.obs import EventRecorder
from repro.obs.regress import RegressionCheck, diff_artifacts, summarize
from repro.trees import CompleteBinaryTree


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    """(good, bad) artifacts over the same workload: CF mapping vs modulo."""
    tree = CompleteBinaryTree(10)
    trace = heap_workload(tree, ops=40)
    out = tmp_path_factory.mktemp("regress")
    paths = {}
    for name, mapping in [
        ("good", ColorMapping.max_parallelism(tree, 4)),
        ("bad", ModuloMapping(tree, 9)),
    ]:
        rec = EventRecorder()
        ParallelMemorySystem(mapping, recorder=rec).run_trace(trace)
        paths[name] = rec.save(out / f"{name}.jsonl")
    return paths


class TestSummarize:
    def test_summary_metrics(self, artifacts):
        good = summarize(artifacts["good"])
        bad = summarize(artifacts["bad"])
        assert good["total_conflicts"] == 0
        assert bad["total_conflicts"] > 0
        assert good["total_accesses"] == bad["total_accesses"] == 40
        assert bad["span_cycles"] > good["span_cycles"]


class TestCheck:
    def test_growth_math(self):
        assert RegressionCheck("m", base=10, new=11, limit=0.2).growth == pytest.approx(0.1)
        assert RegressionCheck("m", base=0, new=0, limit=0.0).ok
        assert not RegressionCheck("m", base=0, new=1, limit=1000.0).ok  # inf growth

    def test_zero_threshold_blocks_any_increase(self):
        assert not RegressionCheck("m", base=5, new=6, limit=0.0).ok
        assert RegressionCheck("m", base=5, new=5, limit=0.0).ok


class TestDiff:
    def test_injected_regression_fails(self, artifacts):
        report = diff_artifacts(
            artifacts["good"], artifacts["bad"], {"max-conflict-growth": 0.0}
        )
        assert not report.ok
        assert "FAIL" in str(report)

    def test_identical_artifacts_pass(self, artifacts):
        report = diff_artifacts(
            artifacts["bad"],
            artifacts["bad"],
            {"max-conflict-growth": 0.0, "max-p95-queue-growth": 0.0},
        )
        assert report.ok
        assert "PASS" in str(report)

    def test_metric_names_accepted_directly(self, artifacts):
        report = diff_artifacts(
            artifacts["bad"], artifacts["good"], {"span_cycles": 0.0}
        )
        assert report.ok  # good is strictly faster

    def test_unknown_metric_rejected(self, artifacts):
        with pytest.raises(KeyError):
            diff_artifacts(artifacts["good"], artifacts["bad"], {"bogus": 0.0})
