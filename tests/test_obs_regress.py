"""Unit tests for the telemetry regression gate."""

import pytest

from repro.bench.workloads import heap_workload
from repro.core import ColorMapping, ModuloMapping
from repro.memory import ParallelMemorySystem
from repro.obs import EventRecorder
from repro.obs.regress import RegressionCheck, diff_artifacts, summarize
from repro.trees import CompleteBinaryTree


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    """(good, bad) artifacts over the same workload: CF mapping vs modulo."""
    tree = CompleteBinaryTree(10)
    trace = heap_workload(tree, ops=40)
    out = tmp_path_factory.mktemp("regress")
    paths = {}
    for name, mapping in [
        ("good", ColorMapping.max_parallelism(tree, 4)),
        ("bad", ModuloMapping(tree, 9)),
    ]:
        rec = EventRecorder()
        ParallelMemorySystem(mapping, recorder=rec).run_trace(trace)
        paths[name] = rec.save(out / f"{name}.jsonl")
    return paths


class TestSummarize:
    def test_summary_metrics(self, artifacts):
        good = summarize(artifacts["good"])
        bad = summarize(artifacts["bad"])
        assert good["total_conflicts"] == 0
        assert bad["total_conflicts"] > 0
        assert good["total_accesses"] == bad["total_accesses"] == 40
        assert bad["span_cycles"] > good["span_cycles"]


class TestCheck:
    def test_growth_math(self):
        assert RegressionCheck("m", base=10, new=11, limit=0.2).growth == pytest.approx(0.1)
        assert RegressionCheck("m", base=0, new=0, limit=0.0).ok
        assert not RegressionCheck("m", base=0, new=1, limit=1000.0).ok  # inf growth

    def test_zero_threshold_blocks_any_increase(self):
        assert not RegressionCheck("m", base=5, new=6, limit=0.0).ok
        assert RegressionCheck("m", base=5, new=5, limit=0.0).ok


class TestDiff:
    def test_injected_regression_fails(self, artifacts):
        report = diff_artifacts(
            artifacts["good"], artifacts["bad"], {"max-conflict-growth": 0.0}
        )
        assert not report.ok
        assert "FAIL" in str(report)

    def test_identical_artifacts_pass(self, artifacts):
        report = diff_artifacts(
            artifacts["bad"],
            artifacts["bad"],
            {"max-conflict-growth": 0.0, "max-p95-queue-growth": 0.0},
        )
        assert report.ok
        assert "PASS" in str(report)

    def test_metric_names_accepted_directly(self, artifacts):
        report = diff_artifacts(
            artifacts["bad"], artifacts["good"], {"span_cycles": 0.0}
        )
        assert report.ok  # good is strictly faster

    def test_unknown_metric_rejected(self, artifacts):
        with pytest.raises(KeyError):
            diff_artifacts(artifacts["good"], artifacts["bad"], {"bogus": 0.0})


class TestZeroBaseSemantics:
    """The pinned base == 0 rules, in both gate directions."""

    def test_zero_to_zero_is_zero_growth(self):
        check = RegressionCheck("m", base=0.0, new=0.0, limit=0.0)
        assert check.growth == 0.0
        assert check.ok
        assert RegressionCheck("m", base=0.0, new=0.0, limit=0.0,
                               higher_is_better=True).ok

    def test_zero_to_positive_is_infinite_growth(self):
        import math

        check = RegressionCheck("m", base=0.0, new=5.0, limit=1e9)
        assert math.isinf(check.growth)
        assert not check.ok  # no finite threshold admits a metric from nowhere
        # ...but a throughput that appears from zero is an improvement
        assert RegressionCheck("m", base=0.0, new=5.0, limit=0.0,
                               higher_is_better=True).ok

    def test_positive_to_zero_is_full_drop(self):
        check = RegressionCheck("m", base=5.0, new=0.0, limit=0.0)
        assert check.growth == -1.0
        assert check.ok  # lower-is-better: vanishing is fine
        assert not RegressionCheck("m", base=5.0, new=0.0, limit=0.5,
                                   higher_is_better=True).ok


class TestDirectionality:
    def test_higher_is_better_flips_the_gate(self):
        drop = RegressionCheck("thpt", base=100.0, new=80.0, limit=0.1,
                               higher_is_better=True)
        assert drop.growth == pytest.approx(-0.2)
        assert not drop.ok
        tolerated = RegressionCheck("thpt", base=100.0, new=95.0, limit=0.1,
                                    higher_is_better=True)
        assert tolerated.ok
        gain = RegressionCheck("thpt", base=100.0, new=150.0, limit=0.0,
                               higher_is_better=True)
        assert gain.ok

    def test_render_labels_direction(self):
        up = RegressionCheck("wall", base=1.0, new=2.0, limit=0.5)
        down = RegressionCheck("thpt", base=1.0, new=2.0, limit=0.5,
                               higher_is_better=True)
        assert "limit" in str(up) and "FAIL" in str(up)
        assert "max drop" in str(down) and "ok" in str(down)
