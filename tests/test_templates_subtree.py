"""Unit tests for the S-template."""

import numpy as np
import pytest

from repro.templates import STemplate
from repro.trees import CompleteBinaryTree, coords


class TestSTemplate:
    def test_size_must_be_complete(self):
        for bad in (2, 4, 6, 8):
            with pytest.raises(ValueError):
                STemplate(bad)

    def test_levels_property(self):
        assert STemplate(7).levels == 3
        assert STemplate(1).levels == 1

    def test_count_paper_formula(self):
        """Instances are rooted at every node of levels 0..H-k."""
        t = CompleteBinaryTree(6)
        fam = STemplate(7)  # k = 3
        assert fam.count(t) == (1 << (6 - 3 + 1)) - 1  # all nodes at levels 0..3

    def test_admits(self):
        assert STemplate(7).admits(CompleteBinaryTree(3))
        assert not STemplate(7).admits(CompleteBinaryTree(2))

    def test_count_when_not_admitted(self):
        assert STemplate(15).count(CompleteBinaryTree(3)) == 0

    def test_instance_is_complete_subtree(self):
        t = CompleteBinaryTree(5)
        inst = STemplate(7).instance_at(t, 4)
        assert inst.anchor == 4
        # every non-root node's parent is in the instance
        for v in inst.nodes:
            v = int(v)
            if v != 4:
                assert coords.parent(v) in inst

    def test_deepest_roots_reach_tree_bottom(self):
        t = CompleteBinaryTree(5)
        fam = STemplate(7)
        last_root = fam.count(t) - 1
        inst = fam.instance_at(t, last_root)
        assert int(inst.nodes.max()) == t.num_nodes - 1

    def test_single_node_subtree(self):
        t = CompleteBinaryTree(3)
        fam = STemplate(1)
        assert fam.count(t) == t.num_nodes
        assert fam.instance_at(t, 5).node_set() == {5}

    def test_instances_cover_every_possible_root(self):
        t = CompleteBinaryTree(5)
        fam = STemplate(3)
        roots = {inst.anchor for inst in fam.instances(t)}
        assert roots == set(range((1 << 5) - 1 - (1 << 4)))  # levels 0..3

    def test_matrix_first_column_is_roots(self):
        t = CompleteBinaryTree(6)
        fam = STemplate(7)
        matrix = fam.instance_matrix(t)
        assert np.array_equal(matrix[:, 0], fam.roots(t))
