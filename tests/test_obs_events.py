"""Unit tests for the event recorder, artifacts, and Chrome-trace export."""

import json

import numpy as np
import pytest

from repro.core import LabelTreeMapping, ModuloMapping
from repro.memory import ParallelMemorySystem, SharedBus
from repro.obs import (
    NULL_RECORDER,
    EventRecorder,
    default_recorder,
    install,
    load_artifact,
    to_chrome_trace,
    uninstall,
)


class TestRecorder:
    def test_events_accumulate_with_access_context(self):
        rec = EventRecorder()
        rec.begin_access(0, "a")
        rec.event("issue", cycle=0, module=2)
        rec.begin_access(1, "b")
        rec.event("conflict", cycle=0, module=2, extra=2)
        assert [e["access"] for e in rec.events] == [0, 1]
        assert rec.metrics.counter("events.issue").value == 1
        assert rec.metrics.counter("conflicts.total").value == 2

    def test_barrier_clock_offsets_are_global(self):
        rec = EventRecorder()
        rec.event("issue", cycle=1, module=0)
        rec.end_access(3)
        rec.event("issue", cycle=1, module=0)
        assert [e["cycle"] for e in rec.events] == [1, 4]
        assert rec.span >= 4

    def test_queue_depth_feeds_histogram(self):
        rec = EventRecorder()
        rec.event("queue_depth", cycle=0, module=0, depth=7)
        assert rec.metrics.histogram("queue_depth").total == 1


class TestDefaultRecorder:
    def test_null_by_default(self):
        assert default_recorder() is NULL_RECORDER

    def test_install_uninstall(self, tree8):
        rec = EventRecorder()
        install(rec)
        try:
            pms = ParallelMemorySystem(ModuloMapping(tree8, 5))
            assert pms.recorder is rec
            pms.access(np.arange(5))
            assert rec.events
        finally:
            uninstall()
        assert default_recorder() is NULL_RECORDER

    def test_explicit_recorder_wins_over_default(self, tree8):
        pms = ParallelMemorySystem(ModuloMapping(tree8, 5), recorder=NULL_RECORDER)
        assert pms.recorder is NULL_RECORDER


class TestArtifact:
    def _record(self, tree8):
        rec = EventRecorder()
        pms = ParallelMemorySystem(ModuloMapping(tree8, 5), recorder=rec)
        pms.access(np.arange(10), label="warm")
        pms.access(np.arange(7), label="tail")
        return rec

    def test_round_trip(self, tmp_path, tree8):
        rec = self._record(tree8)
        path = rec.save(tmp_path / "a.jsonl")
        meta, events, metrics = load_artifact(path)
        assert meta["num_modules"] == 5
        assert meta["mapping"] == "ModuloMapping"
        assert meta["num_events"] == len(rec.events) == len(events)
        assert metrics["events.issue"]["value"] == 17
        kinds = {e["ev"] for e in events}
        assert {"issue", "complete", "queue_depth", "access", "conflict"} <= kinds

    def test_artifact_is_json_lines(self, tmp_path, tree8):
        path = self._record(tree8).save(tmp_path / "a.jsonl")
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["type"] == "meta"
        assert json.loads(lines[-1])["type"] == "metrics"
        assert all(json.loads(line) for line in lines)

    def test_load_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        with pytest.raises(ValueError):
            load_artifact(bad)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError):
            load_artifact(empty)

    def test_chrome_trace_export(self, tmp_path, tree8):
        rec = EventRecorder()
        pms = ParallelMemorySystem(
            LabelTreeMapping(tree8, 7), interconnect=SharedBus(), recorder=rec
        )
        pms.access(np.arange(12), label="bus")
        artifact = rec.save(tmp_path / "a.jsonl")
        out = to_chrome_trace(artifact, tmp_path / "chrome.json")
        payload = json.loads(out.read_text())
        events = payload["traceEvents"]
        slices = [e for e in events if e.get("ph") == "X"]
        assert len(slices) == 12
        assert all(e["dur"] >= 1 for e in slices)
        names = {e["args"]["name"] for e in events if e.get("ph") == "M"}
        assert "module 0" in names
        instants = [e for e in events if e.get("ph") == "i"]
        assert instants  # conflicts/stalls from the shared bus
