"""Tests for the binomial-heap application."""

import numpy as np
import pytest

from repro.analysis.conflicts import instance_conflicts
from repro.binomial import BinomialHeapApp


class TestSemantics:
    def test_heapsort(self, rng):
        heap = BinomialHeapApp(order=10)
        values = rng.integers(0, 10**6, 500).tolist()
        for v in values:
            heap.insert(int(v))
        heap.check_invariant()
        out = [heap.extract_min() for _ in range(len(values))]
        assert out == sorted(values)
        assert len(heap) == 0

    def test_interleaved_ops(self, rng):
        heap = BinomialHeapApp(order=8)
        reference: list[int] = []
        for _ in range(300):
            if reference and rng.random() < 0.45:
                assert heap.extract_min() == reference.pop(0)
            else:
                v = int(rng.integers(0, 10**6))
                heap.insert(v)
                reference.append(v)
                reference.sort()
            heap.check_invariant()

    def test_peek(self):
        heap = BinomialHeapApp(order=4)
        for v in (9, 2, 7):
            heap.insert(v)
        assert heap.peek_min() == 2
        assert len(heap) == 3

    def test_duplicates(self):
        heap = BinomialHeapApp(order=4)
        for v in (3, 3, 1, 3):
            heap.insert(v)
        assert [heap.extract_min() for _ in range(4)] == [1, 3, 3, 3]

    def test_capacity_and_errors(self):
        heap = BinomialHeapApp(order=2)
        heap.insert(1)
        heap.insert(2)
        heap.insert(3)
        with pytest.raises(OverflowError):
            heap.insert(4)
        empty = BinomialHeapApp(order=2)
        with pytest.raises(IndexError):
            empty.extract_min()
        with pytest.raises(IndexError):
            empty.peek_min()
        with pytest.raises(ValueError):
            BinomialHeapApp(order=0)


class TestTrace:
    def test_accesses_are_aligned_blocks(self, rng):
        heap = BinomialHeapApp(order=7)
        for v in rng.integers(0, 1000, 60):
            heap.insert(int(v))
        for _ in range(20):
            heap.extract_min()
        for _, nodes in heap.trace:
            size = nodes.size
            assert size & (size - 1) == 0  # power of two
            base = int(nodes[0])
            assert base % size == 0 or base % heap.arena % size == 0
            assert np.array_equal(nodes, np.arange(base, base + size))

    def test_subcube_style_mapping_is_cf_on_heap_trace(self, rng):
        """Every block access lands on distinct modules under x mod 2**k ...
        using M = max block size, each access of size 2**k <= M is CF."""
        heap = BinomialHeapApp(order=6)
        for v in rng.integers(0, 1000, 50):
            heap.insert(int(v))
        for _ in range(25):
            heap.extract_min()
        M = 1 << (heap.order - 1)
        colors = np.arange(heap.address_space, dtype=np.int64) % M
        for _, nodes in heap.trace:
            if nodes.size <= M:
                assert instance_conflicts(colors, nodes) == 0

    def test_insert_records_cascade(self):
        heap = BinomialHeapApp(order=5)
        heap.insert(1)  # place at rank 0
        heap.insert(2)  # link rank 0, place rank 1
        labels = [label for label, _ in heap.trace]
        assert labels == ["bheap-place", "bheap-link", "bheap-place"]
