"""Unit tests for the P-template."""

import pytest

from repro.templates import PTemplate
from repro.trees import CompleteBinaryTree, coords


class TestPTemplate:
    def test_invalid_size(self):
        with pytest.raises(ValueError):
            PTemplate(0)

    def test_count_one_per_deep_node(self):
        t = CompleteBinaryTree(5)
        fam = PTemplate(3)
        # anchored at every node of levels 2..4
        assert fam.count(t) == t.num_nodes - 3

    def test_admits(self):
        assert PTemplate(5).admits(CompleteBinaryTree(5))
        assert not PTemplate(6).admits(CompleteBinaryTree(5))

    def test_instances_are_ascending_chains(self):
        t = CompleteBinaryTree(5)
        for inst in PTemplate(4).instances(t):
            nodes = inst.nodes
            for a, b in zip(nodes, nodes[1:]):
                assert coords.parent(int(a)) == int(b)

    def test_leaf_to_root_paths(self):
        t = CompleteBinaryTree(4)
        fam = PTemplate(4)
        # every instance of P(H) is a full leaf-to-root path
        for inst in fam.instances(t):
            assert t.is_leaf(int(inst.nodes[0]))
            assert int(inst.nodes[-1]) == 0
        assert fam.count(t) == t.num_leaves

    def test_single_node_paths(self):
        t = CompleteBinaryTree(3)
        assert PTemplate(1).count(t) == t.num_nodes

    def test_anchor_is_bottom(self):
        t = CompleteBinaryTree(5)
        inst = PTemplate(3).instance_at(t, 0)
        assert inst.anchor == int(inst.nodes[0]) == 3  # first node at level 2

    def test_matrix_matches_path_up(self):
        t = CompleteBinaryTree(6)
        fam = PTemplate(4)
        m = fam.instance_matrix(t)
        bottoms = fam.bottoms(t)
        for row, bottom in zip(m[::7], bottoms[::7]):
            assert list(row) == coords.path_up(int(bottom), 4)
