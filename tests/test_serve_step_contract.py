"""The ``ServeEngine.step()`` contract the fleet coordinator leans on.

Two promises, pinned here because :class:`repro.fleet.FleetCoordinator`
step-drives many engines in lockstep and checkpoints lean on the same
split: (1) ``run()`` is exactly ``start()`` + ``step()``-until-``False``
+ ``finish()`` — a step-driven run produces the identical report and obs
event stream; (2) once ``step()`` returns ``False`` the engine's state is
frozen — the exit checks run before any work, so extra ``step()`` calls
change nothing and a checkpoint captured at the very last cycle restores
to the same final report.
"""

from repro.core import ColorMapping
from repro.memory import ParallelMemorySystem
from repro.obs import EventRecorder
from repro.serve import (
    EngineSnapshot,
    PoissonClient,
    ServeEngine,
    TemplateMix,
    assert_equivalent,
    diff_reports,
    filter_control,
)
from repro.serve.clients import spawn_seeds
from repro.trees import CompleteBinaryTree

CYCLES = 300


def _build(seed=3, recorded=True):
    tree = CompleteBinaryTree(9)
    mapping = ColorMapping.for_modules(tree, 7)
    recorder = EventRecorder() if recorded else None
    system = ParallelMemorySystem(mapping, recorder=recorder)
    engine = ServeEngine(system, policy="greedy-pack")
    mix = TemplateMix.parse(tree, "subtree:7=2,path:6=1,level:4=1")
    clients = [
        PoissonClient(i, mix, rate=0.2, seed=child)
        for i, child in enumerate(spawn_seeds(seed, 3))
    ]
    return engine, clients, recorder


def test_step_driven_run_is_report_identical_to_run():
    engine_a, clients_a, rec_a = _build()
    report_a = engine_a.run(clients_a, max_cycles=CYCLES)

    engine_b, clients_b, rec_b = _build()
    engine_b.start(clients_b, max_cycles=CYCLES)
    steps = 0
    while engine_b.step():
        steps += 1
    report_b = engine_b.finish()

    assert steps >= CYCLES
    assert_equivalent((report_a, rec_a.events), (report_b, rec_b.events))


def test_false_step_leaves_state_untouched():
    engine, clients, _ = _build()
    engine.start(clients, max_cycles=CYCLES)
    while engine.step():
        pass
    frozen = EngineSnapshot.capture(engine).to_json()
    for _ in range(5):
        assert engine.step() is False
    assert EngineSnapshot.capture(engine).to_json() == frozen


def test_checkpoint_at_last_cycle_restores_final_report():
    engine, clients, _ = _build()
    engine.start(clients, max_cycles=CYCLES)
    while engine.step():
        pass
    # checkpoint *after* the run is over but before finish(): the False
    # contract is what makes this snapshot valid
    snapshot = EngineSnapshot.capture(engine)
    report = engine.finish()

    fresh_engine, fresh_clients, _ = _build()
    snapshot.restore_into(fresh_engine, fresh_clients)
    assert fresh_engine.step() is False
    restored = fresh_engine.finish()
    assert diff_reports(report, restored) == []


def test_events_match_between_run_and_stepped_run():
    engine_a, clients_a, rec_a = _build(seed=11)
    engine_a.run(clients_a, max_cycles=150)

    engine_b, clients_b, rec_b = _build(seed=11)
    engine_b.start(clients_b, max_cycles=150)
    while engine_b.step():
        pass
    engine_b.finish()

    assert filter_control(rec_a.events) == filter_control(rec_b.events)
