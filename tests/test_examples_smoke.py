"""Smoke tests: the fast examples must run end-to-end without error.

The slower examples (dijkstra_sssp, heap_workload, mapping_tradeoffs) are
exercised by the experiment harness with the same code paths; here we run
the quick ones outright so a broken example cannot ship.
"""

import importlib.util
import sys
from pathlib import Path


EXAMPLES = Path(__file__).parent.parent / "examples"


def _run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = spec.loader is not None and module or module
    spec.loader.exec_module(module)
    module.main()
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = _run_example("quickstart", capsys)
    assert "0 conflicts" in out
    assert "stored in module" in out


def test_lower_bound(capsys):
    out = _run_example("lower_bound", capsys)
    assert "chromatic" in out
    assert "all conflict-free" in out


def test_range_query(capsys):
    out = _run_example("range_query", capsys)
    assert "composite access" in out
    assert "COLOR" in out and "LABEL-TREE" in out


def test_degraded_array(capsys):
    out = _run_example("degraded_array", capsys)
    assert "healthy" in out
    assert "dead" in out


def test_other_structures(capsys):
    out = _run_example("other_structures", capsys)
    assert "d-ary" in out
    assert "binomial heap: 400 ops verified" in out
    assert "coding theory" in out


def test_all_examples_have_mains():
    for path in EXAMPLES.glob("*.py"):
        text = path.read_text()
        assert "def main()" in text, path
        assert '__name__ == "__main__"' in text, path
        assert text.startswith("#!/usr/bin/env python"), path
