"""Fleet coordinator, routers, tenancy: the non-failover surface."""

import numpy as np
import pytest

from repro.core import ColorMapping
from repro.fleet import (
    BRONZE,
    GOLD,
    AffinityRouter,
    FleetCoordinator,
    LeastLoadedRouter,
    RoundRobinRouter,
    SLOClass,
    TenantDirectory,
    TenantPolicy,
    heavy_tailed_tenants,
    make_router,
)
from repro.memory import ParallelMemorySystem
from repro.obs import EventRecorder
from repro.serve import PoissonClient, ServeEngine, TemplateMix
from repro.serve.clients import spawn_seeds
from repro.trees import CompleteBinaryTree


def make_shards(n, levels=8, modules=7):
    shards = []
    for _ in range(n):
        tree = CompleteBinaryTree(levels)
        mapping = ColorMapping.for_modules(tree, modules)
        shards.append(
            ServeEngine(ParallelMemorySystem(mapping), policy="greedy-pack")
        )
    return shards


@pytest.fixture
def tree():
    return CompleteBinaryTree(8)


def population(tree, num_tenants=6, rate=0.6, seed=3, **kwargs):
    return heavy_tailed_tenants(
        tree, num_tenants, "subtree:7=1,path:5=1,level:4=1", rate,
        seed=seed, **kwargs,
    )


# -- spawn_seeds -------------------------------------------------------------


def test_spawn_seeds_deterministic_and_distinct():
    a = spawn_seeds(42, 16)
    assert a == spawn_seeds(42, 16)
    assert len(set(a)) == 16
    assert a[:4] == spawn_seeds(42, 4)  # prefix-stable under n


def test_spawn_seeds_varies_with_master():
    assert spawn_seeds(1, 8) != spawn_seeds(2, 8)


def test_spawn_seeds_rejects_negative():
    with pytest.raises(ValueError):
        spawn_seeds(0, -1)


# -- routers -----------------------------------------------------------------


def test_make_router_rejects_unknown():
    with pytest.raises(ValueError, match="unknown router"):
        make_router("wat")


def sample_instance(tree, spec="path:4=1", seed=0):
    return TemplateMix.parse(tree, spec).sample(np.random.default_rng(seed))


def test_round_robin_cycles_over_alive_shards(tree):
    coordinator = FleetCoordinator(make_shards(3), router="round-robin")
    router = coordinator.router
    instance = sample_instance(tree)
    placed = [router.place(f"t{i}", instance, coordinator) for i in range(6)]
    assert placed == [0, 1, 2, 0, 1, 2]


def test_least_loaded_prefers_emptier_shard(tree):
    coordinator = FleetCoordinator(make_shards(2), router="least-loaded")
    instance = sample_instance(tree)
    coordinator._feeds[0].push(instance, "t0")  # load shard 0
    assert coordinator.router.place("t1", instance, coordinator) == 1


def test_affinity_is_sticky(tree):
    coordinator = FleetCoordinator(make_shards(3), router="affinity")
    router = coordinator.router
    instance = sample_instance(tree)
    first = router.place("t0", instance, coordinator)
    for _ in range(5):
        assert router.place("t0", instance, coordinator) == first
    assert router.assignments["t0"] == first


def test_affinity_balances_committed_weight(tree):
    """12 equal-size tenants over 3 shards: committed-weight buckets keep
    the spread even instead of piling one size class on one shard."""
    coordinator = FleetCoordinator(make_shards(3), router="affinity")
    router = coordinator.router
    instance = sample_instance(tree)
    for i in range(12):
        router.place(f"t{i}", instance, coordinator)
    per_shard = [0, 0, 0]
    for shard in router.assignments.values():
        per_shard[shard] += 1
    assert max(per_shard) - min(per_shard) <= 1, per_shard


def test_affinity_validates_params():
    with pytest.raises(ValueError):
        AffinityRouter(slack=-1)
    with pytest.raises(ValueError):
        AffinityRouter(bucket=0)
    with pytest.raises(ValueError):
        AffinityRouter(migrate=0)


def test_router_registry_names():
    assert isinstance(make_router("round-robin"), RoundRobinRouter)
    assert isinstance(make_router("least-loaded"), LeastLoadedRouter)
    assert isinstance(make_router("affinity"), AffinityRouter)


# -- tenancy -----------------------------------------------------------------


def test_slo_class_validation():
    with pytest.raises(ValueError):
        SLOClass("bad", weight=0.0)
    with pytest.raises(ValueError):
        SLOClass("bad", deadline=0)
    assert GOLD.weight > BRONZE.weight


def test_tenant_policy_validation():
    with pytest.raises(ValueError):
        TenantPolicy(quota=0)


def test_directory_default_and_classes():
    directory = TenantDirectory(
        {"t0": TenantPolicy(quota=2, slo=GOLD)},
        default=TenantPolicy(slo=BRONZE),
    )
    assert directory.policy("t0").quota == 2
    assert directory.policy("stranger").quota is None
    assert set(directory.classes()) == {"gold", "bronze"}


def test_heavy_tailed_population_shape(tree):
    pop = population(tree, num_tenants=6, gold_every=3)
    assert len(pop.clients) == 6
    assert [c.tenant for c in pop.clients] == [f"t{i}" for i in range(6)]
    # Zipf: rates strictly decreasing
    rates = [c.rate for c in pop.clients]
    assert rates == sorted(rates, reverse=True)
    assert pop.directory.policy("t0").slo.name == "gold"
    assert pop.directory.policy("t1").slo.name == "bronze"
    assert pop.directory.policy("t3").slo.name == "gold"


def test_heavy_tailed_validation(tree):
    with pytest.raises(ValueError):
        heavy_tailed_tenants(tree, 0, "path:4=1", 1.0)
    with pytest.raises(ValueError):
        heavy_tailed_tenants(tree, 2, "path:4=1", 0.0)


# -- coordinator accounting --------------------------------------------------


def test_fleet_accounting_closes(tree):
    pop = population(tree)
    report = FleetCoordinator(make_shards(3), router="least-loaded").run(
        pop.clients, 200
    )
    assert report.arrivals == report.routed + report.quota_shed
    assert report.completed + report.shard_shed == report.routed
    assert report.availability == 1.0
    assert report.dead_shards == []
    assert report.rerouted == 0
    assert report.completed_items > 0
    # shard trackers saw exactly what the coordinator routed (no failover)
    assert sum(r.completed for r in report.shard_reports) == report.completed


def test_fleet_report_identical_between_run_and_stepped(tree):
    reports = []
    for _ in range(2):
        pop = population(tree)
        coordinator = FleetCoordinator(make_shards(2), router="round-robin")
        if not reports:
            reports.append(coordinator.run(pop.clients, 150))
        else:
            coordinator.start(pop.clients, 150)
            while coordinator.step():
                pass
            reports.append(coordinator.finish())
    a, b = reports
    assert (a.arrivals, a.routed, a.completed, a.completed_items) == (
        b.arrivals, b.routed, b.completed, b.completed_items
    )
    assert a.latency == b.latency


def test_fleet_step_false_is_stable(tree):
    pop = population(tree)
    coordinator = FleetCoordinator(make_shards(2))
    coordinator.start(pop.clients, 100)
    while coordinator.step():
        pass
    before = (coordinator._completed, coordinator._routed, coordinator._cycle)
    for _ in range(4):
        assert coordinator.step() is False
    assert (coordinator._completed, coordinator._routed, coordinator._cycle) == before


def test_quota_sheds_excess_and_books_balance(tree):
    pop = population(tree, num_tenants=4, rate=2.5, quota=1)
    recorder = EventRecorder()
    report = FleetCoordinator(
        make_shards(2), router="round-robin",
        directory=pop.directory, recorder=recorder,
    ).run(pop.clients, 200)
    assert report.quota_shed > 0
    assert report.arrivals == report.routed + report.quota_shed
    assert report.completed + report.shard_shed == report.routed
    sheds = [e for e in recorder.events if e["ev"] == "fleet_shed"]
    assert len(sheds) == report.quota_shed
    assert all(e["reason"] == "quota" for e in sheds)


def test_gold_tenants_admitted_first_under_quota(tree):
    """Same quota, gold weight outranks bronze in the admission sort, so
    gold tenants shed strictly less than equally-loaded bronze tenants."""
    pop = population(tree, num_tenants=6, rate=3.0, quota=2, gold_every=2)
    report = FleetCoordinator(
        make_shards(2), router="least-loaded", directory=pop.directory
    ).run(pop.clients, 300)
    assert report.classes is not None
    assert set(report.classes) == {"gold", "bronze"}
    assert report.classes["gold"]["completed"] > 0


def test_tenant_summary_in_fleet_report(tree):
    pop = population(tree, num_tenants=4)
    report = FleetCoordinator(make_shards(2)).run(pop.clients, 150)
    assert report.tenants is not None
    for label in ("t0", "t1"):
        assert label in report.tenants
        assert report.tenants[label]["completed"] >= 0


def test_fleet_route_events(tree):
    pop = population(tree, num_tenants=3)
    recorder = EventRecorder()
    report = FleetCoordinator(
        make_shards(2), router="round-robin", recorder=recorder
    ).run(pop.clients, 100)
    routes = [e for e in recorder.events if e["ev"] == "fleet_route"]
    assert len(routes) == report.routed
    assert {e["shard"] for e in routes} <= {0, 1}
    assert all(e["tenant"].startswith("t") for e in routes)


def test_unique_client_ids_enforced(tree):
    mix = TemplateMix.parse(tree, "path:4=1")
    clients = [PoissonClient(0, mix, 0.1), PoissonClient(0, mix, 0.1)]
    with pytest.raises(ValueError, match="unique"):
        FleetCoordinator(make_shards(2)).start(clients, 50)


def test_empty_fleet_rejected():
    with pytest.raises(ValueError, match="at least one shard"):
        FleetCoordinator([])
