"""Unit tests for the range-query tree (composite-template workload)."""

import numpy as np
import pytest

from repro.apps import RangeQueryTree
from repro.trees import coords, subtree_nodes


@pytest.fixture
def rq(tree8, rng):
    keys = np.sort(rng.integers(0, 10**6, tree8.num_leaves))
    return RangeQueryTree(tree8, keys)


class TestConstruction:
    def test_key_count_must_match_leaves(self, tree8):
        with pytest.raises(ValueError):
            RangeQueryTree(tree8, np.arange(10))

    def test_keys_must_be_sorted(self, tree8):
        keys = np.arange(tree8.num_leaves)[::-1].copy()
        with pytest.raises(ValueError):
            RangeQueryTree(tree8, keys)

    def test_separators_are_left_subtree_maxima(self, rq):
        t = rq.tree
        for v in range(t.num_nodes // 4):
            left_leaves = rq.keys[
                coords.leftmost_leaf(2 * v + 1, t.num_levels) - t.level_start(t.last_level):
                coords.rightmost_leaf(2 * v + 1, t.num_levels) - t.level_start(t.last_level) + 1
            ]
            assert rq.node_key[v] == left_leaves.max()


class TestDecomposition:
    def test_cover_is_exact_partition(self, rq):
        t = rq.tree
        for lo, hi in [(0, 0), (0, 127), (3, 97), (64, 64), (1, 126), (31, 32)]:
            cover = rq.decompose(lo, hi)
            covered = []
            for root, levels in cover:
                leaves = [
                    v for v in subtree_nodes(root, levels)
                    if coords.level_of(int(v)) == t.last_level
                ]
                covered.extend(int(v) - t.level_start(t.last_level) for v in leaves)
            assert sorted(covered) == list(range(lo, hi + 1))

    def test_cover_is_logarithmic(self, rq):
        for lo, hi in [(1, 126), (5, 120), (17, 111)]:
            assert len(rq.decompose(lo, hi)) <= 2 * rq.tree.num_levels

    def test_aligned_range_is_single_subtree(self, rq):
        cover = rq.decompose(0, 63)
        assert len(cover) == 1
        root, levels = cover[0]
        assert levels == 7

    def test_invalid_range(self, rq):
        with pytest.raises(ValueError):
            rq.decompose(5, 200)


class TestQueries:
    def test_results_match_key_filter(self, rq, rng):
        for _ in range(25):
            lo, hi = sorted(rng.integers(0, 10**6, 2).tolist())
            got = rq.query(lo, hi)
            expect = rq.keys[(rq.keys >= lo) & (rq.keys <= hi)]
            assert np.array_equal(got, expect)

    def test_empty_range(self, rq):
        keys = rq.keys
        gap_lo = int(keys[10]) + 1
        gap_hi = int(keys[11]) - 1
        if gap_lo <= gap_hi:
            assert rq.query(gap_lo, gap_hi).size == 0

    def test_inverted_range_rejected(self, rq):
        with pytest.raises(ValueError):
            rq.query(10, 5)

    def test_search_path_reaches_correct_leaf(self, rq):
        t = rq.tree
        for leaf_idx in (0, 9, 77, 127):
            key = int(rq.keys[leaf_idx])
            path = rq.search_path(key)
            assert path[0] == 0
            assert t.is_leaf(path[-1])
            assert rq.keys[path[-1] - t.level_start(t.last_level)] == key

    def test_queries_recorded_in_trace(self, rq):
        rq.query(0, 10**6)
        assert len(rq.trace) == 1
        label, nodes = next(iter(rq.trace))
        assert label == "range-query"
        assert nodes.size > 0


class TestCompositeInstance:
    def test_matches_paper_description(self, rq, rng):
        """Subtree components + path components, pairwise disjoint."""
        for _ in range(10):
            lo, hi = sorted(rng.integers(0, 10**6, 2).tolist())
            if rq.query(lo, hi).size == 0:
                continue
            comp = rq.composite_instance(lo, hi)
            kinds = {part.kind for part in comp.components}
            assert kinds <= {"subtree", "path"}
            assert "subtree" in kinds

    def test_path_components_are_ascending(self, rq):
        comp = rq.composite_instance(int(rq.keys[3]), int(rq.keys[90]))
        for part in comp.components:
            if part.kind == "path":
                for a, b in zip(part.nodes, part.nodes[1:]):
                    assert coords.parent(int(a)) == int(b)

    def test_empty_match_rejected(self, rq):
        keys = rq.keys
        gap_lo = int(keys[10]) + 1
        gap_hi = int(keys[11]) - 1
        if gap_lo <= gap_hi:
            with pytest.raises(ValueError):
                rq.composite_instance(gap_lo, gap_hi)
