"""Unit tests for the batch parallel priority queue."""

import numpy as np
import pytest

from repro.apps import BatchParallelQueue
from repro.core import ColorMapping
from repro.memory import ParallelMemorySystem
from repro.trees import CompleteBinaryTree, coords


class TestSemantics:
    def test_batched_ops_preserve_order(self, rng):
        queue = BatchParallelQueue(CompleteBinaryTree(10))
        all_keys = []
        for _ in range(5):
            batch = rng.integers(0, 10**6, 40)
            queue.batch_insert(batch)
            all_keys.extend(int(v) for v in batch)
        smallest = queue.batch_extract_min(25)
        assert smallest.tolist() == sorted(all_keys)[:25]
        rest = queue.drain_sorted()
        assert rest.tolist() == sorted(all_keys)[25:]

    def test_interleaved_batches(self, rng):
        queue = BatchParallelQueue(CompleteBinaryTree(9))
        reference: list[int] = []
        for step in range(8):
            batch = rng.integers(0, 1000, 16)
            queue.batch_insert(batch)
            reference.extend(int(v) for v in batch)
            reference.sort()
            got = queue.batch_extract_min(8)
            assert got.tolist() == reference[:8]
            reference = reference[8:]

    def test_peek(self):
        queue = BatchParallelQueue(CompleteBinaryTree(5))
        queue.batch_insert(np.array([5, 2, 9]))
        assert queue.peek_min() == 2
        assert len(queue) == 3

    def test_capacity_and_bounds(self):
        queue = BatchParallelQueue(CompleteBinaryTree(3))
        with pytest.raises(ValueError):
            queue.batch_insert(np.array([], dtype=np.int64))
        queue.batch_insert(np.arange(7))
        with pytest.raises(OverflowError):
            queue.batch_insert(np.array([1]))
        with pytest.raises(IndexError):
            queue.batch_extract_min(8)
        with pytest.raises(ValueError):
            queue.batch_extract_min(0)
        with pytest.raises(IndexError):
            BatchParallelQueue(CompleteBinaryTree(3)).peek_min()


class TestTrace:
    def test_wave_is_union_of_root_paths(self):
        queue = BatchParallelQueue(CompleteBinaryTree(6))
        queue.batch_insert(np.arange(10))
        label, nodes = next(iter(queue.trace))
        assert label == "queue-batch-insert"
        node_set = {int(v) for v in nodes}
        assert 0 in node_set
        for v in node_set:
            if v:
                assert coords.parent(v) in node_set  # upward-closed

    def test_one_access_per_batch(self, rng):
        queue = BatchParallelQueue(CompleteBinaryTree(9))
        for _ in range(6):
            queue.batch_insert(rng.integers(0, 100, 20))
        queue.batch_extract_min(30)
        assert len(queue.trace) == 7

    def test_batches_cheaper_than_sequential_ops(self, rng):
        """One composite wave of B paths costs far fewer rounds than B
        barrier path accesses — the point of batching on parallel memory."""
        tree = CompleteBinaryTree(10)
        queue = BatchParallelQueue(tree)
        queue.batch_insert(rng.integers(0, 10**6, 64))
        mapping = ColorMapping.max_parallelism(tree, 4)
        stats = ParallelMemorySystem(mapping).run_trace(queue.trace)
        # 64 sequential inserts would cost >= 64 cycles; the wave costs
        # roughly (touched nodes)/M
        assert stats.total_cycles < 64
