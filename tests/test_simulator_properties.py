"""Property-based tests of the simulator's conservation invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ModuloMapping, RandomMapping
from repro.memory import (
    AccessTrace,
    Crossbar,
    MultiBus,
    ParallelMemorySystem,
    SharedBus,
)
from repro.trees import CompleteBinaryTree

TREE = CompleteBinaryTree(9)

traces = st.lists(
    st.lists(
        st.integers(min_value=0, max_value=TREE.num_nodes - 1),
        min_size=1,
        max_size=20,
        unique=True,
    ),
    min_size=1,
    max_size=12,
)


def _build(trace_lists) -> AccessTrace:
    trace = AccessTrace()
    for nodes in trace_lists:
        trace.add(np.array(nodes, dtype=np.int64))
    return trace


class TestConservation:
    @settings(max_examples=40, deadline=None)
    @given(traces, st.integers(min_value=1, max_value=20))
    def test_everything_served_exactly_once(self, trace_lists, M):
        trace = _build(trace_lists)
        pms = ParallelMemorySystem(ModuloMapping(TREE, M))
        stats = pms.run_trace(trace)
        assert stats.total_items == trace.total_items
        assert sum(mod.served for mod in pms.modules) == trace.total_items

    @settings(max_examples=40, deadline=None)
    @given(traces, st.integers(min_value=2, max_value=16))
    def test_barrier_cycles_identity(self, trace_lists, M):
        """On a unit-latency crossbar: cycles == conflicts + accesses."""
        trace = _build(trace_lists)
        stats = ParallelMemorySystem(RandomMapping(TREE, M, seed=1)).run_trace(trace)
        assert stats.total_cycles == stats.total_conflicts + stats.num_accesses

    @settings(max_examples=30, deadline=None)
    @given(traces, st.integers(min_value=2, max_value=16))
    def test_interconnect_ordering(self, trace_lists, M):
        """Narrower interconnects never finish faster."""
        trace = _build(trace_lists)
        mapping = RandomMapping(TREE, M, seed=2)
        xbar = ParallelMemorySystem(mapping, interconnect=Crossbar()).run_trace(trace)
        mb = ParallelMemorySystem(mapping, interconnect=MultiBus(2)).run_trace(trace)
        bus = ParallelMemorySystem(mapping, interconnect=SharedBus()).run_trace(trace)
        assert xbar.total_cycles <= mb.total_cycles <= bus.total_cycles
        assert bus.total_cycles == trace.total_items  # fully serial

    @settings(max_examples=30, deadline=None)
    @given(traces, st.integers(min_value=2, max_value=16))
    def test_pipelined_bounds(self, trace_lists, M):
        """Drain time sits between busiest-module load and total items."""
        trace = _build(trace_lists)
        pms = ParallelMemorySystem(RandomMapping(TREE, M, seed=3))
        stats = pms.run_trace(trace, pipelined=True)
        busiest = int(stats.module_totals.max())
        assert busiest <= stats.total_cycles <= trace.total_items

    @settings(max_examples=20, deadline=None)
    @given(traces, st.integers(min_value=2, max_value=8), st.integers(min_value=1, max_value=4))
    def test_latency_scales_cycles(self, trace_lists, M, latency):
        trace = _build(trace_lists)
        mapping = RandomMapping(TREE, M, seed=4)
        fast = ParallelMemorySystem(mapping).run_trace(trace)
        slow = ParallelMemorySystem(mapping, module_latency=latency).run_trace(trace)
        assert slow.total_cycles >= fast.total_cycles
        assert slow.total_cycles <= latency * fast.total_cycles

    @settings(max_examples=20, deadline=None)
    @given(traces, st.integers(min_value=2, max_value=8))
    def test_open_loop_conserves(self, trace_lists, M):
        trace = _build(trace_lists)
        pms = ParallelMemorySystem(ModuloMapping(TREE, M))
        stats = pms.run_open_loop(trace, arrival_interval=2)
        assert stats.total_items == trace.total_items
        assert sum(mod.served for mod in pms.modules) == trace.total_items
