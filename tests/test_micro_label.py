"""Unit tests for MICRO-LABEL (paper Fig. 10)."""

import numpy as np
import pytest

from repro.analysis import matrix_conflicts
from repro.core import (
    default_l,
    micro_label_index_array,
    micro_label_index_resolve,
    micro_label_list_size,
)
from repro.templates import PTemplate, STemplate
from repro.trees import CompleteBinaryTree


class TestSizing:
    def test_list_size_formula(self):
        # corrected size: max index + 1 = 2**l + 2**(m-l) - 1
        assert micro_label_list_size(5, 2) == 4 + 8 - 1
        assert micro_label_list_size(6, 3) == 8 + 8 - 1

    def test_degenerate_m_equals_l(self):
        assert micro_label_list_size(3, 3) == 7

    def test_invalid(self):
        with pytest.raises(ValueError):
            micro_label_list_size(2, 0)
        with pytest.raises(ValueError):
            micro_label_list_size(2, 3)

    def test_default_l_scaling(self):
        """l ~ log2(sqrt(M log M)): grows with M, stays within [1, m-1]."""
        prev = 0
        for M in (7, 15, 31, 63, 127, 255, 511, 1023):
            m = (M - 1).bit_length()
            l = default_l(M)
            assert 1 <= l <= m - 1
            assert l >= prev
            prev = l


class TestIndexPattern:
    def test_indices_within_list(self):
        for m, l in [(4, 2), (5, 2), (5, 3), (6, 4), (7, 3)]:
            idx = micro_label_index_array(m, l)
            assert idx.min() >= 0
            assert idx.max() == micro_label_list_size(m, l) - 1

    def test_top_l_levels_are_identity(self):
        idx = micro_label_index_array(5, 3)
        assert np.array_equal(idx[:7], np.arange(7))

    def test_index_2l_minus_1_skipped(self):
        """Fig. 10's fresh-color formula skips Sigma index 2**l - 1 (see module doc)."""
        idx = micro_label_index_array(6, 3)
        assert (1 << 3) - 1 not in set(idx.tolist())

    def test_fresh_index_shared_by_block_pairs(self):
        """Blocks 2h and 2h+1 of a level share their fresh Sigma index."""
        m, l = 6, 3
        idx = micro_label_index_array(m, l)
        half = 1 << (l - 1)
        j = 5
        base = (1 << j) - 1
        lasts = idx[base + half - 1 : base + (1 << j) : half]
        assert np.array_equal(lasts[0::2], lasts[1::2])

    def test_readonly(self):
        idx = micro_label_index_array(4, 2)
        with pytest.raises(ValueError):
            idx[0] = 0


class TestConflictProperties:
    @pytest.mark.parametrize("m,l", [(4, 2), (5, 2), (5, 3), (6, 4)])
    def test_paths_within_subtree_conflict_free(self, m, l):
        """MICRO-LABEL is CF on P(m) within the subtree (paper's claim)."""
        idx = micro_label_index_array(m, l)
        tree = CompleteBinaryTree(m)
        pm = PTemplate(m).instance_matrix(tree)
        conf = matrix_conflicts(idx, pm, micro_label_list_size(m, l))
        assert conf.max() == 0

    @pytest.mark.parametrize("m,l", [(4, 2), (5, 3), (6, 4)])
    def test_small_subtrees_conflict_free(self, m, l):
        """MICRO-LABEL is CF on S(2**l - 1) (paper's claim)."""
        idx = micro_label_index_array(m, l)
        tree = CompleteBinaryTree(m)
        sm = STemplate((1 << l) - 1).instance_matrix(tree)
        conf = matrix_conflicts(idx, sm, micro_label_list_size(m, l))
        assert conf.max() == 0


class TestResolver:
    @pytest.mark.parametrize("m,l", [(4, 2), (5, 3), (6, 4), (7, 3)])
    def test_matches_pattern_array(self, m, l):
        idx = micro_label_index_array(m, l)
        for rel in range(idx.size):
            got, hops = micro_label_index_resolve(rel, m, l)
            assert got == idx[rel]
            assert hops <= m

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            micro_label_index_resolve((1 << 4) - 1, 4, 2)
