"""Event sinks, the bounded recorder buffer, and registry snapshots."""

import pytest

from repro.obs import (
    CallbackSink,
    EventRecorder,
    JsonlSink,
    MetricsRegistry,
    load_artifact,
)


def _record_some(recorder, n=6):
    for cycle in range(n):
        recorder.event("issue", cycle=cycle, module=cycle % 3, latency=2)
        recorder.event("queue_depth", cycle=cycle, module=0, depth=cycle + 1)


# -- CallbackSink / attach / detach --------------------------------------------


def test_callback_sink_sees_every_event_until_detached():
    recorder = EventRecorder()
    seen = []
    sink = CallbackSink(seen.append)
    recorder.attach(sink)
    _record_some(recorder, 2)
    assert [e["ev"] for e in seen] == ["issue", "queue_depth"] * 2
    recorder.detach(sink)
    _record_some(recorder, 1)
    assert len(seen) == 4  # detached sinks see nothing further
    recorder.detach(sink)  # double-detach is a no-op


# -- JsonlSink: streamed artifact == batch save() ------------------------------


def test_streamed_artifact_equals_batch_save(tmp_path):
    recorder = EventRecorder()
    recorder.set_meta(mode="serve", system="test")
    stream = recorder.stream_to(tmp_path / "live.jsonl")
    _record_some(recorder)
    recorder.event("complete", cycle=9, module=1, latency=4)
    stream.close()
    recorder.detach(stream)
    saved = recorder.save(tmp_path / "batch.jsonl")

    live = load_artifact(tmp_path / "live.jsonl")
    batch = load_artifact(saved)
    assert live == batch
    meta, events, metrics = live
    assert meta["span"] == 13  # cycle 9 + latency 4
    assert meta["num_events"] == 13
    assert len(events) == 13
    assert metrics["events.issue"] == {"type": "counter", "value": 6}


def test_truncated_stream_still_parses(tmp_path):
    recorder = EventRecorder()
    stream = recorder.stream_to(tmp_path / "cut.jsonl")
    _record_some(recorder, 3)
    stream.flush()  # daemon killed here: no final meta/metrics lines
    meta, events, metrics = load_artifact(tmp_path / "cut.jsonl")
    assert len(events) == 6
    assert "span" not in meta  # only the header meta line made it out
    assert metrics == {}
    stream.close()
    stream.close()  # idempotent


# -- ring buffer ---------------------------------------------------------------


def test_ring_buffer_evicts_oldest_but_metrics_and_sinks_see_all(tmp_path):
    """The pinned eviction-consistency contract: a bounded buffer drops the
    oldest events, while the metrics registry, attached sinks, and the
    streamed artifact still account for every event ever recorded."""
    recorder = EventRecorder(capacity=4)
    seen = []
    recorder.attach(CallbackSink(seen.append))
    stream = recorder.stream_to(tmp_path / "all.jsonl")
    _record_some(recorder, 6)  # 12 events into a 4-slot ring
    assert len(recorder.events) == 4
    assert recorder.evicted == 8
    assert [e["cycle"] for e in recorder.events] == [4, 4, 5, 5]
    assert len(seen) == 12
    assert recorder.metrics.counter("events.issue").value == 6
    stream.close()
    meta, events, _ = load_artifact(tmp_path / "all.jsonl")
    assert len(events) == 12  # the stream is complete despite eviction
    assert meta["evicted"] == 8
    assert meta["num_events"] == 12


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        EventRecorder(capacity=0)


# -- state_dict round-trip -----------------------------------------------------


def test_state_round_trip_preserves_metrics_despite_eviction():
    recorder = EventRecorder(capacity=3)
    _record_some(recorder, 5)
    state = recorder.state_dict()

    restored = EventRecorder(capacity=3)
    restored.load_state(state)
    assert restored.events == recorder.events
    assert restored.evicted == recorder.evicted == 7
    # replaying the 3 surviving events could never rebuild these counts —
    # the registry snapshot in the state dict is what makes them exact
    assert restored.metrics.snapshot() == recorder.metrics.snapshot()
    assert restored.metrics.counter("events.issue").value == 5


def test_load_state_replays_events_for_pre_snapshot_captures():
    recorder = EventRecorder()
    _record_some(recorder, 4)
    state = recorder.state_dict()
    del state["metrics"]  # a capture from before the registry rode along
    del state["evicted"]

    restored = EventRecorder()
    restored.load_state(state)
    assert restored.evicted == 0
    assert restored.metrics.snapshot() == recorder.metrics.snapshot()


def test_metrics_registry_snapshot_round_trip():
    registry = MetricsRegistry()
    registry.counter("reqs").inc(7)
    registry.histogram("depth", buckets=(1, 2, 4)).observe(3)
    registry.histogram("depth").observe(9)
    registry.gauge("inflight").set(5)
    registry.gauge("inflight").set(2)
    empty = registry.gauge("never_set")  # min/max stay at the sentinels

    restored = MetricsRegistry.from_snapshot(registry.snapshot())
    assert restored.snapshot() == registry.snapshot()
    assert restored.expose_text() == registry.expose_text()
    restored.histogram("depth").observe(1)  # still usable after restore
    assert restored.histogram("depth").total == 3
    assert empty.name == "never_set"
