"""Unit tests for per-request latency recording."""

import numpy as np
import pytest

from repro.core import ColorMapping, ModuloMapping, LabelTreeMapping
from repro.memory import ParallelMemorySystem, latency_summary
from repro.templates import PTemplate
from repro.apps import level_sweep_trace


class TestRecording:
    def test_off_by_default(self, tree12):
        pms = ParallelMemorySystem(ModuloMapping(tree12, 9))
        pms.access(np.arange(20))
        assert pms.last_latencies is None

    def test_latencies_cover_every_request(self, tree12):
        pms = ParallelMemorySystem(ModuloMapping(tree12, 9), record_latencies=True)
        pms.access(np.arange(20))
        assert pms.last_latencies.size == 20

    def test_cf_access_all_latency_one(self, tree12):
        mapping = ColorMapping.max_parallelism(tree12, 3)
        pms = ParallelMemorySystem(mapping, record_latencies=True)
        nodes = PTemplate(6).instance_at(tree12, 77).nodes
        result = pms.access(nodes)
        if result.conflicts == 0:
            assert np.all(pms.last_latencies == 1)

    def test_max_latency_equals_cycles(self, tree12):
        pms = ParallelMemorySystem(ModuloMapping(tree12, 9), record_latencies=True)
        result = pms.access(np.arange(50))
        assert int(pms.last_latencies.max()) == result.cycles

    def test_pipelined_sojourn_distribution(self, tree12):
        trace = level_sweep_trace(tree12, window=15)
        good = ParallelMemorySystem(LabelTreeMapping(tree12, 15), record_latencies=True)
        good.run_trace(trace, pipelined=True)
        bad = ParallelMemorySystem(
            ColorMapping.max_parallelism(tree12, 4), record_latencies=True
        )
        bad.run_trace(trace, pipelined=True)
        # balanced mapping drains with lower p95 sojourn than the skewed one
        assert latency_summary(good.last_latencies)["p95"] < latency_summary(
            bad.last_latencies
        )["p95"]


class TestSummary:
    def test_summary_fields(self):
        s = latency_summary(np.array([1, 2, 3, 4, 100]))
        assert s["mean"] == pytest.approx(22.0)
        assert s["p50"] == 3.0
        assert s["max"] == 100.0
        assert s["p50"] <= s["p95"] <= s["max"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            latency_summary(np.array([]))
