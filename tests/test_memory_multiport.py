"""Unit tests for multi-ported memory modules."""

import pytest

from repro.core import ColorMapping, ModuloMapping
from repro.memory import MemoryModule, ParallelMemorySystem
from repro.templates import PTemplate


class TestModulePorts:
    def test_dual_port_serves_two_per_cycle(self):
        mod = MemoryModule(module_id=0, ports=2)
        for i in range(4):
            mod.enqueue(i, i)
        assert mod.step(0) is not None
        assert mod.step(0) is not None
        assert mod.step(0) is None  # both ports busy
        assert mod.step(1) is not None

    def test_ports_with_latency(self):
        mod = MemoryModule(module_id=0, ports=2, latency=3)
        for i in range(3):
            mod.enqueue(i, i)
        assert mod.step(0) is not None and mod.step(0) is not None
        assert mod.step(1) is None and mod.step(2) is None
        assert mod.step(3) is not None

    def test_invalid_ports(self):
        with pytest.raises(ValueError):
            MemoryModule(module_id=0, ports=0)

    def test_busy_until_shim(self):
        mod = MemoryModule(module_id=0, ports=3)
        mod.busy_until = 5
        assert mod.busy_until == 5
        assert mod.step(4) is None or not mod.queue  # all ports blocked


class TestSystemPorts:
    def test_dual_ported_banks_halve_conflict_rounds(self, tree12):
        """Hardware ports are an alternative to a better mapping."""
        mapping = ModuloMapping(tree12, 7)
        nodes = PTemplate(7).instance_at(tree12, 200).nodes
        single = ParallelMemorySystem(mapping).access(nodes)
        dual = ParallelMemorySystem(mapping, module_ports=2).access(nodes)
        if single.conflicts > 0:
            assert dual.cycles < single.cycles
            assert dual.cycles >= -(-single.cycles // 2)

    def test_cf_mapping_gains_nothing_from_ports(self, tree12):
        """Conflict-free accesses are already one round: ports are wasted."""
        mapping = ColorMapping.max_parallelism(tree12, 3)
        nodes = PTemplate(7).instance_at(tree12, 100).nodes
        single = ParallelMemorySystem(mapping).access(nodes)
        dual = ParallelMemorySystem(mapping, module_ports=2).access(nodes)
        if single.conflicts == 0:
            assert dual.cycles == single.cycles == 1

    def test_trace_totals_consistent(self, tree12):
        mapping = ModuloMapping(tree12, 7)
        fam = PTemplate(7)
        from repro.memory import AccessTrace

        trace = AccessTrace()
        for i in range(0, fam.count(tree12), 211):
            trace.add_instance(fam.instance_at(tree12, i))
        pms = ParallelMemorySystem(mapping, module_ports=2)
        stats = pms.run_trace(trace)
        assert stats.total_items == trace.total_items
        assert sum(m.served for m in pms.modules) == trace.total_items
