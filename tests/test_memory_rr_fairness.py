"""Regression tests for round-robin fairness on issue-limited interconnects.

Before the fix, ``_rr_start`` advanced once per *cycle* inside a drain, so a
drain whose length was a multiple of ``M`` (e.g. M one-per-module requests
on a shared bus) wrapped the pointer back to its starting value — module 0
was served first on every consecutive access and the highest-numbered module
always waited the longest.  The pointer now advances once per *drain*, so
the module served first rotates across accesses; the within-drain schedule
is unchanged.
"""

import numpy as np
import pytest

from repro.core import ModuloMapping
from repro.memory import MultiBus, ParallelMemorySystem, SharedBus
from repro.obs import EventRecorder
from repro.trees import CompleteBinaryTree


@pytest.fixture
def tree():
    return CompleteBinaryTree(6)


def _issue_schedule(rec: EventRecorder) -> dict[int, list[int]]:
    """access index -> modules in the order their requests issued."""
    schedule: dict[int, list[int]] = {}
    for event in rec.events:
        if event["ev"] == "issue":
            schedule.setdefault(event["access"], []).append(event["module"])
    return schedule


class TestSharedBusRotation:
    def test_start_module_rotates_across_accesses(self, tree):
        rec = EventRecorder()
        pms = ParallelMemorySystem(
            ModuloMapping(tree, 4), interconnect=SharedBus(), recorder=rec
        )
        nodes = np.array([0, 1, 2, 3])  # one request per module
        for _ in range(4):
            pms.access(nodes)
        # pinned schedule: each access starts one module later than the last
        assert _issue_schedule(rec) == {
            0: [0, 1, 2, 3],
            1: [1, 2, 3, 0],
            2: [2, 3, 0, 1],
            3: [3, 0, 1, 2],
        }

    def test_no_module_is_permanently_last(self, tree):
        pms = ParallelMemorySystem(
            ModuloMapping(tree, 4), interconnect=SharedBus(), record_latencies=True
        )
        nodes = np.array([0, 1, 2, 3])
        worst = set()
        for _ in range(4):
            pms.access(nodes)
            worst.add(int(pms.last_latencies.max()))
        # every access still takes 4 bus cycles; fairness shows up in *which*
        # module pays the 4-cycle wait, pinned by the schedule test above
        assert worst == {4}

    def test_within_drain_schedule_unchanged(self, tree):
        """First access of a fresh system matches the pre-fix schedule."""
        rec = EventRecorder()
        pms = ParallelMemorySystem(
            ModuloMapping(tree, 4), interconnect=SharedBus(), recorder=rec
        )
        pms.access(np.array([0, 1, 2, 3]))
        assert _issue_schedule(rec)[0] == [0, 1, 2, 3]


class TestMultiBusRotation:
    def test_rotation_on_multibus(self, tree):
        rec = EventRecorder()
        pms = ParallelMemorySystem(
            ModuloMapping(tree, 4), interconnect=MultiBus(2), recorder=rec
        )
        nodes = np.array([0, 1, 2, 3])
        pms.access(nodes)
        pms.access(nodes)
        schedule = _issue_schedule(rec)
        assert schedule[0] == [0, 1, 2, 3]  # cycle 0: mods 0,1; cycle 1: 2,3
        assert schedule[1] == [1, 2, 3, 0]  # starts one module later

    def test_reset_restores_initial_pointer(self, tree):
        pms = ParallelMemorySystem(ModuloMapping(tree, 4), interconnect=SharedBus())
        pms.access(np.array([0, 1, 2, 3]))
        assert pms._rr_start == 1
        pms.reset()
        assert pms._rr_start == 0


class TestCrossbarUnaffected:
    def test_crossbar_results_identical_across_accesses(self, tree):
        """On a full crossbar the issue limit never binds; rotation is moot."""
        pms = ParallelMemorySystem(ModuloMapping(tree, 4))
        nodes = np.arange(12)
        results = [pms.access(nodes) for _ in range(3)]
        assert len({r.cycles for r in results}) == 1
        assert len({r.conflicts for r in results}) == 1
