"""Unit tests for the baseline mappings."""

import numpy as np
import pytest

from repro.analysis import family_cost
from repro.core import (
    InterleavedMapping,
    LevelModuloMapping,
    ModuloMapping,
    RandomMapping,
)
from repro.templates import LTemplate, PTemplate
from repro.trees import coords


class TestModulo:
    def test_color_is_id_mod_M(self, tree8):
        mapping = ModuloMapping(tree8, 7)
        arr = mapping.color_array()
        assert np.array_equal(arr, np.arange(tree8.num_nodes) % 7)
        assert mapping.module_of(10) == 3

    def test_cf_on_level_windows_up_to_M(self, tree8):
        mapping = ModuloMapping(tree8, 7)
        assert family_cost(mapping, LTemplate(7)) == 0

    def test_bad_on_paths(self, tree8):
        """The spine v, 2v+1, 4v+3... collides mod M — paths conflict heavily."""
        mapping = ModuloMapping(tree8, 7)
        assert family_cost(mapping, PTemplate(7)) >= 1


class TestLevelModulo:
    def test_color_is_index_mod_M(self, tree8):
        mapping = LevelModuloMapping(tree8, 5)
        for v in (0, 5, 20, 100):
            assert mapping.module_of(v) == coords.index_in_level(v) % 5
        assert np.array_equal(
            mapping.color_array(),
            np.array([coords.index_in_level(v) % 5 for v in range(tree8.num_nodes)]),
        )

    def test_cf_on_levels_but_leftmost_path_monochrome(self, tree8):
        mapping = LevelModuloMapping(tree8, 5)
        assert family_cost(mapping, LTemplate(5)) == 0
        # leftmost spine: index 0 at every level -> all color 0
        spine = [coords.coord_to_id(0, j) for j in range(8)]
        assert len({mapping.module_of(v) for v in spine}) == 1


class TestInterleaved:
    def test_formula(self, tree8):
        mapping = InterleavedMapping(tree8, 6)
        for v in (0, 3, 17, 99):
            i, j = coords.id_to_coord(v)
            assert mapping.module_of(v) == (i + j) % 6

    def test_array_matches_scalar(self, tree8):
        mapping = InterleavedMapping(tree8, 6)
        arr = mapping.color_array()
        assert all(arr[v] == mapping.module_of(v) for v in range(tree8.num_nodes))

    def test_leftmost_spine_not_monochrome(self, tree8):
        mapping = InterleavedMapping(tree8, 6)
        spine = [coords.coord_to_id(0, j) for j in range(8)]
        assert len({mapping.module_of(v) for v in spine}) > 1


class TestRandom:
    def test_reproducible(self, tree8):
        a = RandomMapping(tree8, 9, seed=3).color_array()
        b = RandomMapping(tree8, 9, seed=3).color_array()
        c = RandomMapping(tree8, 9, seed=4).color_array()
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_colors_in_range(self, tree8):
        RandomMapping(tree8, 9, seed=0).validate()

    def test_module_of_matches_array(self, tree8):
        mapping = RandomMapping(tree8, 9, seed=1)
        arr = mapping.color_array()
        assert all(mapping.module_of(v) == arr[v] for v in range(0, 255, 17))


class TestCommonInterface:
    @pytest.mark.parametrize("cls", [ModuloMapping, LevelModuloMapping, InterleavedMapping])
    def test_invalid_module_count(self, cls, tree8):
        with pytest.raises(ValueError):
            cls(tree8, 0)

    def test_loads_sum_to_tree_size(self, tree8):
        for mapping in (
            ModuloMapping(tree8, 7),
            RandomMapping(tree8, 7),
            InterleavedMapping(tree8, 7),
        ):
            assert mapping.module_loads().sum() == tree8.num_nodes

    def test_out_of_tree_node_rejected(self, tree8):
        with pytest.raises(ValueError):
            ModuloMapping(tree8, 7).module_of(tree8.num_nodes)
