"""Driver unit tests: cadence, crash gate, hook order, tick semantics."""

import pytest

from repro.host import Driver, Steppable


class ScriptedTarget:
    """A minimal Steppable that runs ``total`` cycles and logs everything."""

    def __init__(self, total):
        self.total = total
        self._cycle = 0
        self._active = False
        self.log = []

    @property
    def cycle(self):
        return self._cycle

    @property
    def active(self):
        return self._active

    def start(self, clients, max_cycles, drain=True, drain_limit=1_000_000):
        self._cycle = 0
        self._active = True
        self.log.append(("start", clients, max_cycles))

    def step(self):
        if not self._active:
            return False
        if self._cycle >= self.total:
            self._active = False
            return False
        self._cycle += 1
        self.log.append(("step", self._cycle))
        return True

    def finish(self):
        self.log.append(("finish",))
        return {"cycles": self._cycle}


def test_scripted_target_satisfies_protocol():
    assert isinstance(ScriptedTarget(1), Steppable)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"checkpoint_every": 0, "checkpoint": lambda t: None},
        {"checkpoint_every": 5},  # cadence without a callable
        {"crash_at": 3},  # crash cycle without a callable
        {"pace_s": -0.1},
    ],
)
def test_driver_rejects_bad_parameters(kwargs):
    with pytest.raises(ValueError):
        Driver(ScriptedTarget(1), **kwargs)


def test_run_is_start_loop_finish():
    target = ScriptedTarget(3)
    report = Driver(target).run(["c"], 3)
    assert report == {"cycles": 3}
    assert target.log[0] == ("start", ["c"], 3)
    assert target.log[-1] == ("finish",)
    assert [e for e in target.log if e[0] == "step"] == [
        ("step", 1),
        ("step", 2),
        ("step", 3),
    ]


def test_loop_returns_cycles_driven_and_counts_ticks():
    target = ScriptedTarget(7)
    driver = Driver(target)
    driver.start([], 7)
    assert driver.loop() == 7
    assert driver.ticks == 7
    # a drained target yields no further ticks
    assert driver.loop() == 0


def test_checkpoint_fires_on_cadence_exactly_once_per_boundary():
    target = ScriptedTarget(5)
    seen = []
    driver = Driver(
        target,
        checkpoint_every=2,
        checkpoint=lambda t: seen.append(t.cycle),
    )
    driver.start([], 5)
    driver.loop()
    assert seen == [0, 2, 4]
    assert driver.last_checkpoint == 4
    # the final (False) tick must not re-checkpoint an inactive target
    driver.tick()
    assert seen == [0, 2, 4]


def test_seeded_last_checkpoint_skips_restored_boundary():
    target = ScriptedTarget(4)
    seen = []
    driver = Driver(
        target, checkpoint_every=2, checkpoint=lambda t: seen.append(t.cycle)
    )
    driver.start([], 4)
    driver.last_checkpoint = 0  # as recovery seeds it with the snapshot cycle
    driver.loop()
    assert seen == [2, 4]


def test_crash_gate_fires_at_cycle():
    class Boom(RuntimeError):
        pass

    def crash(target):
        raise Boom(f"at {target.cycle}")

    target = ScriptedTarget(10)
    driver = Driver(target, crash_at=4, crash=crash)
    driver.start([], 10)
    with pytest.raises(Boom, match="at 4"):
        driver.loop()
    assert target.cycle == 4


def test_hooks_order_and_final_step_skips_after_hooks():
    target = ScriptedTarget(2)
    calls = []
    driver = Driver(
        target,
        before_step=[lambda t: calls.append(("before", t.cycle))],
        after_step=[lambda t: calls.append(("after", t.cycle))],
    )
    driver.start([], 2)
    driver.loop()
    # before hooks see the pre-step cycle; after hooks see the post-step one;
    # the final False step runs its before hook but no after hook
    assert calls == [
        ("before", 0),
        ("after", 1),
        ("before", 1),
        ("after", 2),
        ("before", 2),
    ]


def test_checkpoint_lands_before_the_step_it_covers():
    target = ScriptedTarget(3)
    order = []
    driver = Driver(
        target,
        checkpoint_every=1,
        checkpoint=lambda t: order.append(("ckpt", t.cycle)),
        after_step=[lambda t: order.append(("stepped", t.cycle))],
    )
    driver.start([], 3)
    driver.loop()
    # the trailing ("ckpt", 3): the target is still active entering the
    # final tick (it deactivates inside the False step), so the last
    # boundary is checkpointed too — a run can restore right at its end
    assert order == [
        ("ckpt", 0),
        ("stepped", 1),
        ("ckpt", 1),
        ("stepped", 2),
        ("ckpt", 2),
        ("stepped", 3),
        ("ckpt", 3),
    ]
