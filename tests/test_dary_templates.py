"""Unit tests for the d-ary template families (TemplateFamily protocol)."""

import numpy as np
import pytest

from repro.analysis import family_cost, load_report
from repro.dary import (
    DaryColorMapping,
    DaryLTemplate,
    DaryPTemplate,
    DarySTemplate,
    DaryTree,
    dary_level_instances,
    dary_path_instances,
    dary_subtree_instances,
)


@pytest.fixture
def tree3():
    return DaryTree(3, 6)


class TestMatricesMatchIterators:
    def test_subtree(self, tree3):
        fam = DarySTemplate(3, 2)
        matrix = fam.instance_matrix(tree3)
        legacy = list(dary_subtree_instances(tree3, 2))
        assert matrix.shape == (len(legacy), fam.size)
        for row, inst in zip(matrix, legacy):
            assert np.array_equal(np.sort(row), np.sort(inst))

    def test_path(self, tree3):
        fam = DaryPTemplate(3, 4)
        matrix = fam.instance_matrix(tree3)
        legacy = list(dary_path_instances(tree3, 4))
        assert matrix.shape == (len(legacy), 4)
        for row, inst in zip(matrix, legacy):
            assert np.array_equal(row, inst)

    def test_level(self, tree3):
        fam = DaryLTemplate(3, 5)
        matrix = fam.instance_matrix(tree3)
        legacy = list(dary_level_instances(tree3, 5))
        assert matrix.shape == (len(legacy), 5)
        for row, inst in zip(matrix, legacy):
            assert np.array_equal(row, inst)


class TestProtocol:
    @pytest.mark.parametrize(
        "fam", [DarySTemplate(3, 2), DaryLTemplate(3, 5), DaryPTemplate(3, 4)],
        ids=["S", "L", "P"],
    )
    def test_count_matches_enumeration(self, fam, tree3):
        assert fam.count(tree3) == sum(1 for _ in fam.instances(tree3))

    @pytest.mark.parametrize(
        "fam", [DarySTemplate(3, 2), DaryLTemplate(3, 5), DaryPTemplate(3, 4)],
        ids=["S", "L", "P"],
    )
    def test_instance_at_bounds(self, fam, tree3):
        with pytest.raises(IndexError):
            fam.instance_at(tree3, fam.count(tree3))

    @pytest.mark.parametrize(
        "fam", [DarySTemplate(3, 2), DaryLTemplate(3, 5), DaryPTemplate(3, 4)],
        ids=["S", "L", "P"],
    )
    def test_sample(self, fam, tree3, rng):
        inst = fam.sample(tree3, rng)
        assert inst.size == fam.size

    def test_arity_mismatch_rejected(self, tree3):
        with pytest.raises(ValueError):
            DarySTemplate(2, 2).count(tree3)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DarySTemplate(1, 2)
        with pytest.raises(ValueError):
            DaryLTemplate(3, 0)
        with pytest.raises(ValueError):
            DaryPTemplate(3, 0)


class TestAnalysisStackIntegration:
    def test_family_cost_works_on_dary(self, tree3):
        """The headline: the binary analysis stack runs on d-ary unchanged."""
        mapping = DaryColorMapping(tree3, N=4, k=2)
        assert family_cost(mapping, DarySTemplate(3, 2)) == 0
        assert family_cost(mapping, DaryPTemplate(3, 4)) == 0
        assert family_cost(mapping, DaryLTemplate(3, mapping.K)) <= 2

    def test_load_report_works_on_dary(self, tree3):
        mapping = DaryColorMapping(tree3, N=4, k=2)
        report = load_report(mapping)
        assert report.loads.sum() == tree3.num_nodes

    def test_spectrum_works_on_dary(self, tree3):
        from repro.analysis import conflict_spectrum

        mapping = DaryColorMapping(tree3, N=4, k=2)
        spec = conflict_spectrum(mapping, DaryPTemplate(3, 4))
        assert spec.max == 0 and spec.cf_fraction == 1.0
