"""Unit tests for the TP proof-machinery template."""

import pytest

from repro.templates import TPTemplate
from repro.trees import CompleteBinaryTree, coords


class TestTPTemplate:
    def test_size_is_anchor_level_plus_K(self):
        fam = TPTemplate(7, anchor_level=4)
        assert fam.size == 4 + 7

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TPTemplate(6, anchor_level=2)  # K not 2**k - 1
        with pytest.raises(ValueError):
            TPTemplate(7, anchor_level=-1)

    def test_count_one_per_anchor(self):
        t = CompleteBinaryTree(8)
        assert TPTemplate(7, anchor_level=3).count(t) == 8

    def test_instance_structure(self):
        t = CompleteBinaryTree(8)
        fam = TPTemplate(7, anchor_level=3)
        inst = fam.instance_at(t, 5)
        anchor = coords.coord_to_id(5, 3)
        assert inst.anchor == anchor
        nodes = inst.node_set()
        # contains the whole root path
        for v in coords.path_up(anchor, 4):
            assert v in nodes
        # contains the size-7 subtree below the anchor
        assert coords.child_left(anchor) in nodes
        assert coords.child_left(coords.child_left(anchor)) in nodes
        assert inst.size == fam.size

    def test_thm2_instances_have_exactly_n_plus_K_minus_k_nodes(self):
        """The counting step of Theorem 2: |TP_K(i, N-k)| = N + K - k."""
        N, k = 6, 2
        K = (1 << k) - 1
        t = CompleteBinaryTree(N)
        fam = TPTemplate(K, anchor_level=N - k)
        assert not fam.is_clipped(t)
        for inst in fam.instances(t):
            assert inst.size == N + K - k

    def test_clipped_at_tree_bottom(self):
        t = CompleteBinaryTree(5)
        fam = TPTemplate(7, anchor_level=4)  # subtree would need 3 levels below
        assert fam.is_clipped(t)
        inst = fam.instance_at(t, 0)
        # only the anchor itself survives of the subtree part
        assert inst.size == 4 + 1

    def test_anchor_level_zero_is_pure_subtree(self):
        t = CompleteBinaryTree(5)
        inst = TPTemplate(7, anchor_level=0).instance_at(t, 0)
        assert inst.node_set() == set(range(7))

    def test_matrix_matches_instances(self):
        t = CompleteBinaryTree(7)
        fam = TPTemplate(3, anchor_level=4)
        m = fam.instance_matrix(t)
        insts = list(fam.instances(t))
        assert m.shape[0] == len(insts)
        for row, inst in zip(m, insts):
            assert set(int(v) for v in row) == inst.node_set()

    def test_matrix_empty_when_not_admitted(self):
        t = CompleteBinaryTree(3)
        fam = TPTemplate(3, anchor_level=5)
        assert fam.instance_matrix(t).shape[0] == 0
