"""Crash-consistent serving: snapshots, the write-ahead journal, and
deterministic recovery (plus the satellite state-capture contracts)."""

import json

import numpy as np
import pytest

from repro.core import ColorMapping
from repro.io import load_faults, save_faults, save_snapshot
from repro.memory import FaultSchedule, ParallelMemorySystem
from repro.obs import EventRecorder
from repro.serve import (
    CrashPlan,
    DurabilityError,
    DurableServer,
    EngineSnapshot,
    JournalError,
    PoissonClient,
    ServeEngine,
    ServeJournal,
    SimulatedCrash,
    TemplateMix,
    assert_equivalent,
    diff_reports,
    filter_control,
    journal_accounting,
    run_with_recovery,
)
from repro.serve.slo import SLOTracker
from repro.trees import CompleteBinaryTree

FAULT_SPEC = "fail=2@100:220,slow=4:3@150:400,drop=0.05@50:500,seed=5"


def make_factory(
    *,
    levels=9,
    modules=7,
    faults=FAULT_SPEC,
    recorder=True,
    rate=0.08,
    clients=3,
    retry_timeout=40,
    repair="color",
    **engine_kwargs,
):
    """A process-restart stand-in: each call builds the same fresh setup."""

    def factory():
        tree = CompleteBinaryTree(levels)
        mapping = ColorMapping.for_modules(tree, modules)
        rec = EventRecorder() if recorder else None
        system = ParallelMemorySystem(mapping, recorder=rec)
        if faults is not None:
            system.attach_faults(FaultSchedule.parse(faults))
        engine = ServeEngine(
            system,
            "greedy-pack",
            retry_timeout=retry_timeout,
            repair=repair,
            queue_capacity=128,
            **engine_kwargs,
        )
        mix = TemplateMix.parse(tree, "subtree:7=2,path:6=1,level:4=1")
        cs = [PoissonClient(i, mix, rate, seed=100 + i) for i in range(clients)]
        return engine, cs

    return factory


def uninterrupted(factory, state_dir, max_cycles=400, checkpoint_every=100):
    engine, clients = factory()
    server = DurableServer(
        engine, clients, state_dir, checkpoint_every=checkpoint_every
    )
    report = server.serve(max_cycles)
    return report, list(engine.system.recorder.events), server


class TestSnapshotRoundTrip:
    def test_mid_run_snapshot_resumes_bit_exactly(self, tmp_path):
        factory = make_factory()
        base_report, base_events, _ = uninterrupted(factory, tmp_path / "base")

        engine, clients = factory()
        engine.start(clients, 400)
        for _ in range(180):  # mid-run, faults active, batches in flight
            assert engine.step()
        snapshot = engine.checkpoint()
        # survive the actual persistence path, not just object identity
        save_snapshot(snapshot.to_json(), tmp_path / "snap.json")
        from repro.io import load_snapshot

        restored = EngineSnapshot.from_json(load_snapshot(tmp_path / "snap.json"))

        engine2, clients2 = factory()
        engine2.restore(restored, clients2)
        while engine2.step():
            pass
        report = engine2.finish()
        assert_equivalent(
            (base_report, base_events),
            (report, list(engine2.system.recorder.events)),
        )

    def test_snapshot_json_is_pure_json(self, tmp_path):
        engine, clients = make_factory()()
        engine.start(clients, 400)
        for _ in range(120):
            engine.step()
        payload = engine.checkpoint().to_json()
        assert json.loads(json.dumps(payload)) == json.loads(json.dumps(payload))

    def test_restore_rejects_mismatched_configuration(self):
        factory = make_factory()
        engine, clients = factory()
        engine.start(clients, 400)
        for _ in range(50):
            engine.step()
        snapshot = engine.checkpoint()
        other, other_clients = make_factory(repair="oblivious")()
        with pytest.raises(DurabilityError, match="configuration"):
            other.restore(snapshot, other_clients)

    def test_restore_rejects_mismatched_clients(self):
        factory = make_factory()
        engine, clients = factory()
        engine.start(clients, 400)
        for _ in range(50):
            engine.step()
        snapshot = engine.checkpoint()
        engine2, _ = factory()
        _, wrong = make_factory(clients=2)()
        with pytest.raises(DurabilityError, match="client ids"):
            engine2.restore(snapshot, wrong)

    def test_restore_preserves_absolute_clocks(self):
        """Restoring must keep the lifetime clock and per-module port
        clocks — unlike reset() — so post-recovery fault windows fire at
        the same absolute cycles as in the uninterrupted run."""
        factory = make_factory()
        engine, clients = factory()
        engine.start(clients, 400)
        for _ in range(180):
            engine.step()
        snapshot = engine.checkpoint()
        clock = engine.system.clock
        ports = [list(mod._port_free) for mod in engine.system.modules]
        cursor = engine.system._fault_schedule.cursor
        # the run actually advanced: fault edges applied, ports scheduled
        assert cursor > 0
        assert any(p > 0 for port in ports for p in port)

        engine2, clients2 = factory()
        engine2.system.reset()
        assert engine2.system._fault_schedule.cursor == 0  # reset() rewinds
        assert all(
            p == 0 for m in engine2.system.modules for p in m._port_free
        )
        engine2.restore(snapshot, clients2)
        assert engine2.system.clock == clock
        assert [list(m._port_free) for m in engine2.system.modules] == ports
        assert engine2.system._fault_schedule.cursor == cursor
        assert engine2._cycle == snapshot.cycle


class TestJournal:
    def test_create_record_recover(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = ServeJournal.create(path)
        j.record("admit", 3, request=0, client=1, size=7)
        j.record("dispatch", 4, batch=0, requests=[0], size=7, conflicts=0)
        j.close()
        j2 = ServeJournal.recover(path)
        assert [r["kind"] for r in j2.records] == ["admit", "dispatch"]
        assert j2.position == 2
        j2.close()

    def test_torn_tail_is_truncated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = ServeJournal.create(path)
        for i in range(5):
            j.record("admit", i, request=i)
        j.close()
        with path.open("a") as fh:
            fh.write('{"crc": 123, "rec": {"seq": ')  # no newline: torn
        j2 = ServeJournal.recover(path)
        assert len(j2.records) == 5
        j2.close()
        # the torn bytes are gone from disk too
        j3 = ServeJournal.recover(path)
        assert len(j3.records) == 5
        j3.close()

    def test_bad_crc_truncates_from_there(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = ServeJournal.create(path)
        for i in range(4):
            j.record("admit", i, request=i)
        j.close()
        lines = path.read_text().splitlines()
        doc = json.loads(lines[3])  # seqno 2
        doc["crc"] ^= 1
        lines[3] = json.dumps(doc)
        path.write_text("\n".join(lines) + "\n")
        j2 = ServeJournal.recover(path)
        assert [r["seq"] for r in j2.records] == [0, 1]
        j2.close()

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"not": "a journal"}\n')
        with pytest.raises(DurabilityError, match="not a serve journal"):
            ServeJournal.recover(path)

    def test_replay_verifies_and_flags_divergence(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = ServeJournal.create(path)
        j.record("admit", 0, request=0)
        j.record("admit", 1, request=1)
        j.close()
        j2 = ServeJournal.recover(path)
        j2.seek_replay(0)
        assert j2.replaying
        j2.record("admit", 0, request=0)  # matches: ok
        with pytest.raises(JournalError, match="diverged at seqno 1"):
            j2.record("admit", 1, request=99)
        j2.close()

    def test_seek_replay_rejects_future_seqno(self, tmp_path):
        j = ServeJournal.create(tmp_path / "j.jsonl")
        with pytest.raises(JournalError, match="disagree"):
            j.seek_replay(3)
        j.close()


class TestCrashRecovery:
    @pytest.mark.parametrize("mode", ["instant", "mid_checkpoint", "torn_journal"])
    def test_recovery_is_equivalent(self, tmp_path, mode):
        factory = make_factory()
        base_report, base_events, _ = uninterrupted(factory, tmp_path / "base")
        for at in (1, 77, 100, 253):  # incl. mid-batch and a checkpoint cycle
            result = run_with_recovery(
                factory,
                tmp_path / f"{mode}-{at}",
                400,
                checkpoint_every=100,
                crash_plan=CrashPlan(at_cycle=at, mode=mode),
            )
            assert result.crashed
            assert_equivalent(
                (base_report, base_events),
                (result.report, list(result.server.engine.system.recorder.events)),
            )

    def test_exactly_once_accounting(self, tmp_path):
        factory = make_factory()
        result = run_with_recovery(
            factory,
            tmp_path / "run",
            400,
            checkpoint_every=100,
            crash_plan=CrashPlan(at_cycle=253),
        )
        journal = ServeJournal.recover(tmp_path / "run" / "journal.jsonl")
        acct = journal_accounting(journal.records)
        journal.close()
        assert acct["double_retired"] == []
        assert acct["lost"] == set()
        assert len(acct["admitted"]) == result.report.admitted
        # retire + timeout-shed partitions the admitted set on a drained run
        assert len(acct["retired"]) == result.report.completed

    def test_cold_start_recovery_replays_from_zero(self, tmp_path):
        """A crash before the first checkpoint leaves only the journal;
        recovery re-executes from cycle 0 under full verification."""
        factory = make_factory()
        base_report, base_events, _ = uninterrupted(factory, tmp_path / "base")
        result = run_with_recovery(
            factory,
            tmp_path / "cold",
            400,
            checkpoint_every=1000,  # never reached before the crash
            crash_plan=CrashPlan(at_cycle=90),
        )
        assert result.crashed
        assert not list((tmp_path / "cold").glob("snap-*.json.tmp"))
        assert_equivalent(
            (base_report, base_events),
            (result.report, list(result.server.engine.system.recorder.events)),
        )

    def test_no_crash_runs_straight_through(self, tmp_path):
        factory = make_factory()
        result = run_with_recovery(
            factory, tmp_path / "run", 400, checkpoint_every=100
        )
        assert not result.crashed
        assert result.server.checkpoints_written > 0

    def test_tampered_journal_fails_replay(self, tmp_path):
        factory = make_factory()
        engine, clients = factory()
        server = DurableServer(
            engine,
            clients,
            tmp_path / "run",
            checkpoint_every=100,
            crash_plan=CrashPlan(at_cycle=253),
        )
        with pytest.raises(SimulatedCrash):
            server.serve(400)
        # tamper with a record past the last snapshot (cycle 200)
        path = tmp_path / "run" / "journal.jsonl"
        lines = path.read_text().splitlines()
        doc = json.loads(lines[-1])
        doc["rec"]["request"] = 424242
        doc["crc"] = None  # recompute below so the CRC passes
        import zlib

        doc["crc"] = zlib.crc32(
            json.dumps(doc["rec"], sort_keys=True, separators=(",", ":")).encode()
        )
        lines[-1] = json.dumps(doc)
        path.write_text("\n".join(lines) + "\n")
        engine2, clients2 = factory()
        server2 = DurableServer(
            engine2, clients2, tmp_path / "run", checkpoint_every=100
        )
        with pytest.raises(JournalError, match="diverged"):
            server2.recover()

    def test_recover_without_manifest_rejected(self, tmp_path):
        engine, clients = make_factory()()
        server = DurableServer(engine, clients, tmp_path / "empty")
        with pytest.raises(DurabilityError, match="manifest"):
            server.recover()

    def test_control_events_are_emitted_and_filtered(self, tmp_path):
        factory = make_factory()
        result = run_with_recovery(
            factory,
            tmp_path / "run",
            400,
            checkpoint_every=100,
            crash_plan=CrashPlan(at_cycle=253),
        )
        events = list(result.server.engine.system.recorder.events)
        kinds = {ev["ev"] for ev in events}
        assert {"restore", "journal_replay"} <= kinds
        filtered = {ev["ev"] for ev in filter_control(events)}
        assert not filtered & {"checkpoint", "restore", "journal_replay"}

    def test_snapshots_are_pruned_to_retain(self, tmp_path):
        factory = make_factory()
        _, _, server = uninterrupted(
            factory, tmp_path / "run", max_cycles=400, checkpoint_every=50
        )
        snaps = sorted((tmp_path / "run").glob("snap-*.json"))
        assert len(snaps) == server.retain
        assert server.checkpoints_written > server.retain

    def test_checkpoint_overhead_is_tracked(self, tmp_path):
        factory = make_factory()
        _, _, server = uninterrupted(factory, tmp_path / "run")
        assert server.checkpoints_written > 0
        assert server.checkpoint_seconds > 0
        assert 0.0 < server.checkpoint_overhead < 1.0


class TestCrashPlanValidation:
    def test_bad_plans_rejected(self):
        with pytest.raises(ValueError, match="at_cycle"):
            CrashPlan(at_cycle=-1)
        with pytest.raises(ValueError, match="crash mode"):
            CrashPlan(at_cycle=0, mode="gently")

    def test_bad_server_parameters_rejected(self, tmp_path):
        engine, clients = make_factory()()
        with pytest.raises(ValueError, match="checkpoint_every"):
            DurableServer(engine, clients, tmp_path, checkpoint_every=0)
        with pytest.raises(ValueError, match="retain"):
            DurableServer(engine, clients, tmp_path, retain=0)


class TestDiffAndEquivalence:
    def test_diff_reports_names_fields(self, tmp_path):
        factory = make_factory()
        report, _, _ = uninterrupted(factory, tmp_path / "a")
        import dataclasses

        other = dataclasses.replace(report, completed=report.completed + 1)
        diffs = diff_reports(report, other)
        assert len(diffs) == 1 and diffs[0].startswith("completed:")
        with pytest.raises(DurabilityError, match="completed"):
            assert_equivalent((report, []), (other, []))

    def test_event_length_mismatch_detected(self, tmp_path):
        factory = make_factory()
        report, events, _ = uninterrupted(factory, tmp_path / "a")
        with pytest.raises(DurabilityError, match="length"):
            assert_equivalent((report, events), (report, events[:-1]))


# -- satellite contracts -------------------------------------------------------


class TestRepairCacheLRU:
    def test_cache_is_bounded_with_lru_eviction(self):
        tree = CompleteBinaryTree(8)
        mapping = ColorMapping.for_modules(tree, 7)
        system = ParallelMemorySystem(mapping)
        engine = ServeEngine(system, "fifo", repair="color", repair_cache_cap=2)
        a = engine._repair_mapping(frozenset({1}))
        b = engine._repair_mapping(frozenset({2}))
        # touch {1} so {2} is the least recently used entry
        assert engine._repair_mapping(frozenset({1})) is a
        c = engine._repair_mapping(frozenset({3}))
        assert set(engine._repair_cache) == {frozenset({1}), frozenset({3})}
        # an evicted set rebuilds deterministically (same coloring, new object)
        b2 = engine._repair_mapping(frozenset({2}))
        assert b2 is not b
        assert np.array_equal(b2.color_array(), b.color_array())
        assert len(engine._repair_cache) == 2
        assert engine._repair_mapping(frozenset({3})) is c

    def test_cap_validated(self):
        tree = CompleteBinaryTree(8)
        system = ParallelMemorySystem(ColorMapping.for_modules(tree, 7))
        with pytest.raises(ValueError, match="repair_cache_cap"):
            ServeEngine(system, "fifo", repair_cache_cap=0)


class TestEmptyReportAccessors:
    def test_empty_run_yields_defined_values(self):
        report = SLOTracker().report("fifo", cycles=0)
        assert report.p50 is None
        assert report.p95 is None
        assert report.p99 is None
        assert report.max_latency is None
        assert report.completion_rate == 0.0
        assert report.admit_rate == 0.0
        assert report.throughput == 0.0
        assert report.goodput == 0.0
        assert report.shed_rate == 0.0
        assert report.deadline_miss_rate == 0.0
        assert report.availability == 1.0

    def test_populated_run_matches_latency_dict(self, tmp_path):
        factory = make_factory()
        report, _, _ = uninterrupted(factory, tmp_path / "a")
        assert report.p50 == report.latency["p50"]
        assert report.p95 == report.latency["p95"]
        assert report.max_latency == report.latency["max"]
        assert report.completion_rate == report.completed / report.arrivals
        assert report.throughput == report.completed / report.cycles


class TestFaultScheduleRuntimeRoundTrip:
    def test_save_load_mid_run_equals_straight_through(self, tmp_path):
        """Advancing a schedule, saving it, loading it and advancing the
        rest must equal advancing straight through — cursor and drop
        lottery both resume mid-stream."""
        spec = "fail=1@10:60,slow=2:4@30:90,drop=0.2@0:200,seed=13"

        def run(system, upto, start=0):
            for cycle in range(start, upto):
                system.advance_faults(cycle)
                # spin the drop lottery the way serving traffic would
                system._drop_rng.random()

        tree = CompleteBinaryTree(6)
        mapping = ColorMapping.for_modules(tree, 5)

        straight = ParallelMemorySystem(mapping)
        straight.attach_faults(FaultSchedule.parse(spec))
        run(straight, 120)
        final_draw = straight._drop_rng.random()

        first = ParallelMemorySystem(mapping)
        first.attach_faults(FaultSchedule.parse(spec))
        run(first, 70)
        save_faults(first._fault_schedule, tmp_path / "faults.json")

        loaded = load_faults(tmp_path / "faults.json")
        assert isinstance(loaded, FaultSchedule)
        assert loaded.cursor == first._fault_schedule.cursor
        second = ParallelMemorySystem(mapping)
        second.attach_faults(loaded)
        run(second, 120, start=70)
        assert second._drop_rng.random() == final_draw
        assert second.failed_modules() == straight.failed_modules()
        assert [m.latency for m in second.modules] == [
            m.latency for m in straight.modules
        ]

    def test_loaded_schedule_without_runtime_starts_fresh(self, tmp_path):
        sched = FaultSchedule.parse("fail=1@10:60,seed=3")
        payload = sched.to_json()
        payload.pop("runtime")
        (tmp_path / "plain.json").write_text(json.dumps(payload))
        loaded = load_faults(tmp_path / "plain.json")
        assert loaded.cursor == 0

    def test_restore_runtime_validates_cursor(self):
        sched = FaultSchedule.parse("fail=1@10:60,seed=3")
        state = sched.runtime_state()
        state["cursor"] = 99
        with pytest.raises(ValueError, match="cursor"):
            sched.restore_runtime(state)
