"""Unit tests for BASIC-COLOR (paper Section 3.1)."""

import numpy as np
import pytest

from repro.analysis import family_cost
from repro.core import BasicColorMapping, basic_color_array, num_colors
from repro.core.basic_color import check_basic_color_params
from repro.templates import LTemplate, PTemplate, STemplate, TPTemplate
from repro.trees import CompleteBinaryTree


class TestParams:
    def test_num_colors_formula(self):
        assert num_colors(5, 2) == 5 + 3 - 2
        assert num_colors(4, 3) == 4 + 7 - 3

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            check_basic_color_params(2, 0)
        with pytest.raises(ValueError):
            check_basic_color_params(2, 3)  # N < k


class TestColoringStructure:
    def test_top_k_levels_get_distinct_sigma_colors(self):
        colors = basic_color_array(6, 3)
        K = 7
        top = colors[:K]
        assert sorted(top.tolist()) == list(range(K))

    def test_uses_exactly_n_plus_K_minus_k_colors(self):
        for N, k in [(4, 2), (6, 3), (8, 2), (5, 4)]:
            colors = basic_color_array(N, k)
            assert np.unique(colors).size == num_colors(N, k)
            assert colors.max() == num_colors(N, k) - 1

    def test_gamma_colors_one_fresh_per_level(self):
        """Level j >= k introduces exactly one new color, K + (j - k)."""
        N, k = 7, 3
        K = 7
        colors = basic_color_array(N, k)
        seen: set[int] = set(range(K))
        for j in range(k, N):
            level = colors[(1 << j) - 1 : (1 << (j + 1)) - 1]
            new = set(level.tolist()) - seen
            assert new == {K + (j - k)}
            seen |= new

    def test_last_block_node_gets_gamma(self):
        N, k = 6, 3
        K = 7
        colors = basic_color_array(N, k)
        half = 1 << (k - 1)
        for j in range(k, N):
            base = (1 << j) - 1
            lasts = colors[base + half - 1 : base + (1 << j) : half]
            assert np.all(lasts == K + (j - k))

    def test_block_inherits_sibling_subtree_bfs(self):
        """b_0 of block(h, j) gets the color of v2 (paper: w_2)."""
        N, k = 6, 3
        colors = basic_color_array(N, k)
        j = 4
        base = (1 << j) - 1
        for h in range(1 << (j - k + 1)):
            b0 = base + h * (1 << (k - 1))
            h2 = h + 1 if h % 2 == 0 else h - 1
            v2 = (1 << (j - k + 1)) - 1 + h2
            assert colors[b0] == colors[v2]

    def test_k_equals_one_colors_by_level(self):
        """For k=1 every block is a singleton; each level is monochrome."""
        colors = basic_color_array(5, 1)
        for j in range(5):
            level = colors[(1 << j) - 1 : (1 << (j + 1)) - 1]
            assert np.unique(level).size == 1

    def test_n_equals_k_is_just_sigma(self):
        colors = basic_color_array(3, 3)
        assert np.array_equal(colors, np.arange(7))


class TestTheorems:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    @pytest.mark.parametrize("N", [5, 8, 10])
    def test_theorem1_cf_on_S_and_P(self, N, k):
        if N < k:
            pytest.skip("N >= k required")
        tree = CompleteBinaryTree(N)
        mapping = BasicColorMapping(tree, k)
        K = (1 << k) - 1
        assert family_cost(mapping, STemplate(K)) == 0
        assert family_cost(mapping, PTemplate(N)) == 0

    @pytest.mark.parametrize("k,N", [(2, 6), (3, 7), (4, 8)])
    def test_lemma1_cf_on_tp_family(self, k, N):
        """BASIC-COLOR is CF on TP(K, j) for every anchor level j."""
        tree = CompleteBinaryTree(N)
        mapping = BasicColorMapping(tree, k)
        K = (1 << k) - 1
        for j in range(N):
            fam = TPTemplate(K, anchor_level=j)
            assert family_cost(mapping, fam) == 0, f"TP conflict at anchor level {j}"

    @pytest.mark.parametrize("k,N", [(2, 6), (3, 7), (4, 9)])
    def test_lemma2_at_most_one_conflict_on_L(self, k, N):
        tree = CompleteBinaryTree(N)
        mapping = BasicColorMapping(tree, k)
        K = (1 << k) - 1
        assert family_cost(mapping, LTemplate(K)) <= 1

    def test_mapping_interface(self):
        tree = CompleteBinaryTree(6)
        mapping = BasicColorMapping(tree, 3)
        assert mapping.num_modules == num_colors(6, 3)
        assert mapping.K == 7 and mapping.N == 6 and mapping.k == 3
        mapping.validate()
        arr = mapping.color_array()
        assert all(mapping.module_of(v) == arr[v] for v in range(0, tree.num_nodes, 7))
        with pytest.raises(ValueError):
            mapping.module_of(tree.num_nodes)
