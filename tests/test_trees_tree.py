"""Unit tests for CompleteBinaryTree."""

import numpy as np
import pytest

from repro.trees import CompleteBinaryTree


class TestGeometry:
    def test_node_count(self):
        assert CompleteBinaryTree(1).num_nodes == 1
        assert CompleteBinaryTree(4).num_nodes == 15
        assert CompleteBinaryTree(10).num_nodes == 1023

    def test_paper_height_alias(self):
        t = CompleteBinaryTree(6)
        assert t.height == t.num_levels == 6
        assert t.last_level == 5

    def test_leaves(self):
        t = CompleteBinaryTree(4)
        assert t.num_leaves == 8
        assert np.array_equal(t.leaves(), np.arange(7, 15))

    def test_level_sizes_sum_to_total(self):
        t = CompleteBinaryTree(7)
        assert sum(t.level_size(j) for j in range(7)) == t.num_nodes

    def test_level_slice_and_nodes_agree(self):
        t = CompleteBinaryTree(6)
        arr = t.nodes()
        for j in range(6):
            assert np.array_equal(arr[t.level_slice(j)], t.level_nodes(j))

    def test_level_start(self):
        t = CompleteBinaryTree(5)
        assert [t.level_start(j) for j in range(5)] == [0, 1, 3, 7, 15]

    def test_invalid_levels_raise(self):
        t = CompleteBinaryTree(3)
        with pytest.raises(ValueError):
            t.level_nodes(3)
        with pytest.raises(ValueError):
            t.level_size(-1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            CompleteBinaryTree(0)
        with pytest.raises(ValueError):
            CompleteBinaryTree(64)


class TestMembership:
    def test_contains(self):
        t = CompleteBinaryTree(4)
        assert 0 in t and 14 in t
        assert 15 not in t and -1 not in t

    def test_check_node(self):
        t = CompleteBinaryTree(4)
        assert t.check_node(7) == 7
        with pytest.raises(ValueError):
            t.check_node(15)

    def test_is_leaf(self):
        t = CompleteBinaryTree(4)
        assert t.is_leaf(7) and t.is_leaf(14)
        assert not t.is_leaf(6)
        with pytest.raises(ValueError):
            t.is_leaf(99)

    def test_iteration_is_bfs_order(self):
        t = CompleteBinaryTree(3)
        assert list(t) == list(range(7))


class TestDerived:
    def test_subtree_levels_below(self):
        t = CompleteBinaryTree(5)
        assert t.subtree_levels_below(0) == 5
        assert t.subtree_levels_below(3) == 3
        assert t.subtree_levels_below(30) == 1

    def test_max_path_length(self):
        t = CompleteBinaryTree(5)
        assert t.max_path_length(0) == 1
        assert t.max_path_length(30) == 5

    def test_frozen(self):
        t = CompleteBinaryTree(3)
        with pytest.raises(Exception):
            t.num_levels = 5
