"""End-to-end tests for the serving engine (and its CLI surface)."""

import pytest

from repro.bench.workloads import heap_workload
from repro.cli import main
from repro.core import ColorMapping, LabelTreeMapping
from repro.memory import ParallelMemorySystem, SharedBus
from repro.obs import EventRecorder
from repro.obs.report import render_report
from repro.serve import (
    BurstyClient,
    ClosedLoopClient,
    MixEntry,
    PoissonClient,
    ServeEngine,
    TemplateMix,
    TraceClient,
    batch_conflict_bound,
)
from repro.trees import CompleteBinaryTree


@pytest.fixture(scope="module")
def tree():
    return CompleteBinaryTree(11)


@pytest.fixture(scope="module")
def mapping(tree):
    return ColorMapping.max_parallelism(tree, 4)  # M=15, N=11, k=3


@pytest.fixture(scope="module")
def mix(tree):
    return TemplateMix(
        tree,
        [MixEntry("subtree", 15), MixEntry("path", 11), MixEntry("level", 7)],
    )


def _run(mapping, mix, policy, rate=0.3, cycles=600, seed=0, **engine_kw):
    system = ParallelMemorySystem(mapping)
    engine = ServeEngine(system, policy=policy, **engine_kw)
    clients = [PoissonClient(i, mix, rate / 4, seed=seed + i) for i in range(4)]
    return engine.run(clients, max_cycles=cycles), engine, system


class TestEngineBasics:
    def test_everything_admitted_completes(self, mapping, mix):
        report, engine, system = _run(mapping, mix, "greedy-pack")
        assert report.arrivals > 0
        assert report.completed == report.admitted == report.arrivals
        assert report.shed == 0
        served = sum(mod.served for mod in system.modules)
        assert served == report.completed_items
        assert engine.queue.drained

    def test_sojourns_cover_queueing(self, mapping, mix):
        report, _, _ = _run(mapping, mix, "fifo")
        assert report.latency is not None
        assert report.latency["p50"] >= 1
        assert report.wait is not None

    def test_fifo_rounds_equal_conflicts_plus_one(self, mapping, mix):
        """On a unit-latency crossbar a batch with f conflicts takes f+1 rounds."""
        _, engine, _ = _run(mapping, mix, "fifo")
        tracker = engine.tracker
        assert len(tracker.batch_rounds) == len(tracker.batch_conflicts)
        for rounds, conflicts in zip(tracker.batch_rounds, tracker.batch_conflicts):
            assert rounds == conflicts + 1

    def test_deterministic_given_seeds(self, mapping, mix):
        first, _, _ = _run(mapping, mix, "load-aware", seed=5)
        second, _, _ = _run(mapping, mix, "load-aware", seed=5)
        assert first == second

    def test_no_drain_stops_at_max_cycles(self, mapping, mix):
        system = ParallelMemorySystem(mapping)
        engine = ServeEngine(system, policy="fifo")
        clients = [PoissonClient(0, mix, 0.4, seed=1)]
        report = engine.run(clients, max_cycles=200, drain=False)
        assert report.cycles == 200

    def test_rejects_duplicate_client_ids(self, mapping, mix):
        system = ParallelMemorySystem(mapping)
        engine = ServeEngine(system)
        clients = [PoissonClient(0, mix, 0.1), PoissonClient(0, mix, 0.1)]
        with pytest.raises(ValueError):
            engine.run(clients, max_cycles=10)

    def test_run_reports_only_itself(self, mapping, mix):
        system = ParallelMemorySystem(mapping)
        engine = ServeEngine(system, policy="fifo")
        first = engine.run([PoissonClient(0, mix, 0.2, seed=0)], max_cycles=100)
        second = engine.run([PoissonClient(0, mix, 0.2, seed=1)], max_cycles=100)
        assert first.arrivals > 0 and second.arrivals > 0
        # the second report counts only its own run's traffic
        assert second.arrivals == engine.tracker.arrivals
        assert second.completed == second.arrivals


class TestBatchingHeadline:
    def test_greedy_pack_beats_fifo_rounds_per_request(self, mapping, mix):
        """The acceptance headline: equal offered load, strictly fewer
        rounds per request under conflict-aware packing."""
        fifo, _, _ = _run(mapping, mix, "fifo", rate=0.4, cycles=1500)
        greedy, _, _ = _run(mapping, mix, "greedy-pack", rate=0.4, cycles=1500)
        assert fifo.arrivals == greedy.arrivals  # same seeded arrival stream
        assert greedy.mean_rounds_per_request < fifo.mean_rounds_per_request

    def test_batch_conflicts_within_paper_bound(self, mapping, mix):
        """Measured conflicts of every dispatched batch obey c - 1 + k."""
        for policy in ("greedy-pack", "load-aware"):
            _, engine, _ = _run(mapping, mix, policy, rate=0.5, cycles=1000)
            tracker = engine.tracker
            assert tracker.batch_conflicts, "no batches dispatched"
            for conflicts, c in zip(
                tracker.batch_conflicts, tracker.batch_components
            ):
                assert conflicts <= batch_conflict_bound(c, mapping.k)


class TestBackpressure:
    def test_shed_under_burst_overload(self, tree, mapping, mix):
        system = ParallelMemorySystem(mapping)
        engine = ServeEngine(
            system, policy="greedy-pack", queue_capacity=64, admission="shed"
        )
        clients = [BurstyClient(i, mix, 0.5, seed=i) for i in range(4)]
        report = engine.run(clients, max_cycles=600)
        assert report.shed > 0
        assert report.completed + report.shed == report.arrivals
        assert report.shed_rate == report.shed / report.arrivals

    def test_degrade_shrinks_requests(self, tree, mapping):
        mix = TemplateMix(tree, [MixEntry("subtree", 31)])
        system = ParallelMemorySystem(mapping)
        engine = ServeEngine(
            system, policy="fifo", queue_capacity=48, admission="degrade"
        )
        clients = [PoissonClient(0, mix, 0.5, seed=2)]
        report = engine.run(clients, max_cycles=400)
        assert report.degraded > 0
        assert report.completed + report.shed == report.arrivals

    def test_block_admits_everything_eventually(self, tree, mapping, mix):
        system = ParallelMemorySystem(mapping)
        engine = ServeEngine(
            system, policy="fifo", queue_capacity=32, admission="block"
        )
        clients = [PoissonClient(0, mix, 0.6, seed=3)]
        report = engine.run(clients, max_cycles=300)
        assert report.shed == 0
        assert report.completed == report.arrivals

    def test_deadline_misses_counted(self, tree, mapping, mix):
        system = ParallelMemorySystem(mapping, interconnect=SharedBus())
        engine = ServeEngine(system, policy="fifo", deadline=2)
        clients = [PoissonClient(0, mix, 0.6, seed=4)]
        report = engine.run(clients, max_cycles=300)
        assert report.deadline_misses > 0
        assert 0 < report.deadline_miss_rate <= 1


class TestClientIntegration:
    def test_closed_loop_equilibrium(self, mapping, mix):
        system = ParallelMemorySystem(mapping)
        engine = ServeEngine(system, policy="greedy-pack")
        clients = [
            ClosedLoopClient(i, mix, concurrency=2, think_time=1, seed=i)
            for i in range(3)
        ]
        report = engine.run(clients, max_cycles=400)
        assert report.completed == report.arrivals
        assert report.completed > 100  # the loop actually cycles

    def test_trace_client_serves_recorded_workload(self, tree, mapping):
        trace = heap_workload(tree, ops=60)
        system = ParallelMemorySystem(mapping)
        engine = ServeEngine(system, policy="greedy-pack")
        report = engine.run([TraceClient(0, trace, interval=2)], max_cycles=400)
        assert report.completed == len(trace)

    def test_labeltree_mapping_disables_budget(self, tree, mix):
        """Non-COLOR mappings have no k; packing falls back to disjointness."""
        system = ParallelMemorySystem(LabelTreeMapping(tree, 15))
        engine = ServeEngine(system, policy="greedy-pack")
        assert engine.policy.bound_k is None
        report = engine.run([PoissonClient(0, mix, 0.3, seed=0)], max_cycles=300)
        assert report.completed == report.arrivals


class TestObsIntegration:
    def test_serve_events_recorded(self, mapping, mix, tmp_path):
        recorder = EventRecorder()
        system = ParallelMemorySystem(mapping, recorder=recorder)
        engine = ServeEngine(system, policy="greedy-pack")
        clients = [PoissonClient(0, mix, 0.3, seed=0)]
        report = engine.run(clients, max_cycles=300)
        kinds = {e["ev"] for e in recorder.events}
        assert {
            "serve_arrival",
            "serve_complete",
            "access",
            "batch_retire",
            "issue",
            "complete",
        } <= kinds
        arrivals = [e for e in recorder.events if e["ev"] == "serve_arrival"]
        assert len(arrivals) == report.arrivals
        completes = [e for e in recorder.events if e["ev"] == "serve_complete"]
        assert len(completes) == report.completed
        sojourns = sorted(e["sojourn"] for e in completes)
        assert sojourns == sorted(engine.tracker.sojourns)
        assert recorder.meta["serve_policy"] == "greedy-pack"

    def test_artifact_report_renders(self, mapping, mix, tmp_path):
        recorder = EventRecorder()
        system = ParallelMemorySystem(mapping, recorder=recorder)
        engine = ServeEngine(system, policy="load-aware")
        engine.run([PoissonClient(0, mix, 0.3, seed=0)], max_cycles=300)
        path = recorder.save(tmp_path / "serve.jsonl")
        text = render_report(path)
        assert "module utilization" in text
        assert "batch:load-aware" in text


class TestServeCli:
    def test_end_to_end_with_obs(self, tmp_path, capsys):
        obs = tmp_path / "serve.jsonl"
        code = main(
            [
                "serve",
                "--levels", "11",
                "--modules", "15",
                "--policy", "greedy-pack",
                "--arrival-rate", "0.3",
                "--cycles", "300",
                "--obs", str(obs),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "serve[greedy-pack]" in out
        assert obs.exists()
        assert main(["obs", "report", str(obs)]) == 0
        assert "batch:greedy-pack" in capsys.readouterr().out

    def test_policies_and_traffic_shapes(self, capsys):
        for policy in ("fifo", "load-aware"):
            assert main(
                ["serve", "--policy", policy, "--cycles", "150",
                 "--arrival-rate", "0.2"]
            ) == 0
        assert main(
            ["serve", "--traffic", "bursty", "--cycles", "150",
             "--admission", "shed", "--queue-capacity", "64"]
        ) == 0
        assert main(
            ["serve", "--traffic", "closed-loop", "--clients", "2",
             "--cycles", "150", "--think-time", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert out.count("serve[") == 4

    def test_saved_mapping_and_custom_mix(self, tmp_path, capsys):
        mapping_path = tmp_path / "m.npz"
        assert main(
            ["build", "--levels", "10", "--color", "5,2",
             "--out", str(mapping_path)]
        ) == 0
        code = main(
            ["serve", "--mapping", str(mapping_path), "--cycles", "150",
             "--workload", "subtree:3=1,path:5=1,composite:12x3=0.5"]
        )
        assert code == 0
        assert "serve[greedy-pack]" in capsys.readouterr().out
