"""Round-trip coverage for AccessTrace .npz serialization edge cases."""

import numpy as np
import pytest

from repro.memory import AccessTrace


class TestEmptyTrace:
    def test_empty_round_trip(self, tmp_path):
        path = AccessTrace().save(tmp_path / "empty.npz")
        restored = AccessTrace.load(path)
        assert len(restored) == 0
        assert restored.total_items == 0
        assert restored.labels() == []

    def test_empty_trace_extends_cleanly(self, tmp_path):
        restored = AccessTrace.load(AccessTrace().save(tmp_path / "e.npz"))
        restored.add(np.array([1, 2]), label="later")
        assert len(restored) == 1


class TestNonAsciiLabels:
    LABELS = ["λ-insert", "堆排序", "naïve", "🌲-sweep", ""]

    def test_unicode_labels_round_trip(self, tmp_path):
        trace = AccessTrace()
        for i, label in enumerate(self.LABELS):
            trace.add(np.arange(i + 1), label=label)
        restored = AccessTrace.load(trace.save(tmp_path / "unicode.npz"))
        assert [label for label, _ in restored] == self.LABELS
        for (_, a), (_, b) in zip(trace, restored):
            assert np.array_equal(a, b)

    def test_unicode_labels_survive_in_labels_index(self, tmp_path):
        trace = AccessTrace([("Δ", np.array([3])), ("Δ", np.array([5]))])
        restored = AccessTrace.load(trace.save(tmp_path / "d.npz"))
        assert restored.labels() == ["Δ"]


class TestRoundTripFidelity:
    def test_dtype_and_order_preserved(self, tmp_path):
        trace = AccessTrace()
        trace.add(np.array([2**40, 1, 0]), label="big")
        trace.add(np.array([7]), label="small")
        restored = AccessTrace.load(trace.save(tmp_path / "t.npz"))
        pairs = list(restored)
        assert pairs[0][0] == "big" and pairs[1][0] == "small"
        assert pairs[0][1].dtype == np.int64
        assert pairs[0][1][0] == 2**40

    def test_empty_access_still_rejected(self):
        with pytest.raises(ValueError):
            AccessTrace().add(np.array([]))
