"""Unit tests for the parallel memory system simulator."""

import numpy as np
import pytest

from repro.core import ColorMapping, ModuloMapping
from repro.memory import (
    AccessTrace,
    Crossbar,
    MemoryModule,
    MultiBus,
    ParallelMemorySystem,
    SharedBus,
)
from repro.templates import PTemplate


class TestMemoryModule:
    def test_fifo_service(self):
        mod = MemoryModule(module_id=0)
        mod.enqueue(1, 100)
        mod.enqueue(2, 200)
        assert mod.step(0) == (1, 100)
        assert mod.step(1) == (2, 200)
        assert mod.step(2) is None

    def test_latency_blocks_service(self):
        mod = MemoryModule(module_id=0, latency=3)
        mod.enqueue(1, 100)
        mod.enqueue(2, 200)
        assert mod.step(0) == (1, 100)
        assert mod.step(1) is None  # still busy
        assert mod.step(2) is None
        assert mod.step(3) == (2, 200)

    def test_stats(self):
        mod = MemoryModule(module_id=0)
        for i in range(5):
            mod.enqueue(i, i)
        assert mod.max_queue_depth == 5
        for now in range(5):
            mod.step(now)
        assert mod.served == 5 and mod.busy_cycles == 5

    def test_invalid_latency(self):
        with pytest.raises(ValueError):
            MemoryModule(module_id=0, latency=0)


class TestInterconnects:
    def test_issue_limits(self):
        assert Crossbar().issue_limit(8) == 8
        assert SharedBus().issue_limit(8) == 1
        assert MultiBus(3).issue_limit(8) == 3
        assert MultiBus(20).issue_limit(8) == 8

    def test_invalid_multibus(self):
        with pytest.raises(ValueError):
            MultiBus(0)


class TestAccessSemantics:
    def test_crossbar_cycles_equal_conflicts_plus_one(self, tree12):
        """The simulator realizes the paper's cost model exactly."""
        mapping = ColorMapping.max_parallelism(tree12, 3)
        pms = ParallelMemorySystem(mapping)
        fam = PTemplate(7)
        for idx in range(0, fam.count(tree12), 97):
            result = pms.access(fam.instance_at(tree12, idx).nodes)
            assert result.cycles == result.conflicts + 1

    def test_bus_serializes_fully(self, tree12):
        mapping = ColorMapping.max_parallelism(tree12, 3)
        pms = ParallelMemorySystem(mapping, interconnect=SharedBus())
        nodes = PTemplate(7).instance_at(tree12, 0).nodes
        assert pms.access(nodes).cycles == nodes.size

    def test_multibus_between_bus_and_crossbar(self, tree12):
        mapping = ColorMapping.max_parallelism(tree12, 3)
        nodes = PTemplate(7).instance_at(tree12, 5).nodes
        bus = ParallelMemorySystem(mapping, interconnect=SharedBus()).access(nodes).cycles
        xbar = ParallelMemorySystem(mapping).access(nodes).cycles
        mb = ParallelMemorySystem(mapping, interconnect=MultiBus(3)).access(nodes).cycles
        assert xbar <= mb <= bus

    def test_module_latency_scales_cycles(self, tree12):
        mapping = ColorMapping.max_parallelism(tree12, 3)
        nodes = PTemplate(7).instance_at(tree12, 5).nodes
        slow = ParallelMemorySystem(mapping, module_latency=4).access(nodes)
        fast = ParallelMemorySystem(mapping).access(nodes)
        assert slow.cycles >= 4 * fast.cycles - 3

    def test_module_counts_sum_to_size(self, tree12):
        mapping = ModuloMapping(tree12, 9)
        result = ParallelMemorySystem(mapping).access(np.arange(50))
        assert result.module_counts.sum() == 50
        assert result.size == 50

    def test_empty_access_rejected(self, tree12):
        pms = ParallelMemorySystem(ModuloMapping(tree12, 9))
        with pytest.raises(ValueError):
            pms.access(np.empty(0, dtype=np.int64))


class TestTraceReplay:
    def _trace(self, tree, n=30):
        fam = PTemplate(6)
        trace = AccessTrace()
        for i in range(n):
            trace.add_instance(fam.instance_at(tree, (i * 41) % fam.count(tree)))
        return trace

    def test_barrier_totals(self, tree12):
        mapping = ColorMapping(tree12, N=6, k=2)
        pms = ParallelMemorySystem(mapping)
        trace = self._trace(tree12)
        stats = pms.run_trace(trace)
        assert stats.num_accesses == len(trace)
        assert stats.total_items == trace.total_items
        assert stats.total_cycles == stats.total_conflicts + stats.num_accesses

    def test_cf_mapping_runs_trace_without_conflicts(self, tree12):
        mapping = ColorMapping(tree12, N=6, k=2)  # CF on P(6)
        stats = ParallelMemorySystem(mapping).run_trace(self._trace(tree12))
        assert stats.total_conflicts == 0
        assert stats.mean_parallelism == 6.0

    def test_pipelined_drains_everything(self, tree12):
        mapping = ModuloMapping(tree12, 9)
        pms = ParallelMemorySystem(mapping)
        trace = self._trace(tree12)
        stats = pms.run_trace(trace, pipelined=True)
        assert stats.total_items == trace.total_items
        # drain time is at least the busiest module's load
        assert stats.total_cycles >= int(stats.module_totals.max())
        served = sum(mod.served for mod in pms.modules)
        assert served == trace.total_items

    def test_pipelined_no_faster_than_ideal(self, tree12):
        mapping = ModuloMapping(tree12, 9)
        pms = ParallelMemorySystem(mapping)
        trace = self._trace(tree12)
        stats = pms.run_trace(trace, pipelined=True)
        assert stats.total_cycles * 9 >= trace.total_items

    def test_per_label_stats(self, tree12):
        mapping = ModuloMapping(tree12, 9)
        trace = AccessTrace()
        trace.add(np.arange(5), label="a")
        trace.add(np.arange(10), label="b")
        stats = ParallelMemorySystem(mapping).run_trace(trace)
        assert set(stats.per_label_cycles) == {"a", "b"}
        assert stats.per_label_accesses == {"a": 1, "b": 1}

    def test_reset_clears_state(self, tree12):
        mapping = ModuloMapping(tree12, 9)
        pms = ParallelMemorySystem(mapping)
        pms.run_trace(self._trace(tree12))
        pms.reset()
        assert all(mod.served == 0 for mod in pms.modules)
        assert all(mod.idle for mod in pms.modules)


class TestAccessTrace:
    def test_builders(self, tree8):
        trace = AccessTrace()
        trace.add(np.arange(4), label="x")
        inst = PTemplate(5).instance_at(tree8, 0)
        trace.add_instance(inst)
        assert len(trace) == 2
        assert trace.total_items == 4 + 5
        assert trace.labels() == ["path", "x"]

    def test_extend(self):
        a = AccessTrace([("x", np.arange(3))])
        b = AccessTrace([("y", np.arange(2))])
        a.extend(b)
        assert len(a) == 2

    def test_invalid_access(self):
        trace = AccessTrace()
        with pytest.raises(ValueError):
            trace.add(np.empty(0, dtype=np.int64))
        with pytest.raises(ValueError):
            trace.add(np.zeros((2, 2)))


class TestRepeatedRuns:
    """Regression: drains that count cycles from 0 must not inherit port
    clocks from a previous run on the same system."""

    def _trace(self, tree):
        trace = AccessTrace()
        fam = PTemplate(8)
        for idx in range(0, fam.count(tree), 50):
            trace.add_instance(fam.instance_at(tree, idx))
        return trace

    def test_pipelined_cycles_stable_across_runs(self, tree12):
        mapping = ModuloMapping(tree12, 9)
        trace = self._trace(tree12)
        pms = ParallelMemorySystem(mapping)
        first = pms.run_trace(trace, pipelined=True)
        second = pms.run_trace(trace, pipelined=True)
        assert second.total_cycles == first.total_cycles
        fresh = ParallelMemorySystem(mapping).run_trace(trace, pipelined=True)
        assert first.total_cycles == fresh.total_cycles

    def test_open_loop_after_pipelined_run(self, tree12):
        mapping = ModuloMapping(tree12, 9)
        trace = self._trace(tree12)
        pms = ParallelMemorySystem(mapping)
        pms.run_trace(trace, pipelined=True)
        reused = pms.run_open_loop(trace, arrival_interval=2)
        fresh = ParallelMemorySystem(mapping).run_open_loop(
            trace, arrival_interval=2
        )
        assert reused.total_cycles == fresh.total_cycles

    def test_multiport_pipelined_rerun(self, tree12):
        """Multi-port modules keep per-port clocks; the stale-clock reset
        must cover every port, not just the first."""
        mapping = ModuloMapping(tree12, 9)
        trace = self._trace(tree12)
        pms = ParallelMemorySystem(mapping, module_ports=2, module_latency=3)
        first = pms.run_trace(trace, pipelined=True)
        second = pms.run_trace(trace, pipelined=True)
        assert second.total_cycles == first.total_cycles
